#include "ml/serialize.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "crypto/keccak.hpp"

namespace bcfl::ml {

namespace {
constexpr std::uint8_t kMagic[4] = {'b', 'c', 'f', 'l'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeader = 4 + 1 + 8;  // magic + version + count
constexpr std::size_t kDigest = 32;
// Untrusted-input guard: a declared parameter count past this cap (1 GiB
// of fp32) is rejected before the length arithmetic below can wrap or the
// weight vector allocation can OOM. Far above any model the repo ships.
constexpr std::uint64_t kMaxWeights = 1ull << 28;

static_assert(std::endian::native == std::endian::little,
              "serializer assumes a little-endian host");
}  // namespace

Bytes serialize_weights(std::span<const float> weights) {
    if (weights.size() > kMaxWeights) {
        throw ShapeError("weights: parameter count exceeds cap");
    }
    // Build the header+payload region at its final size up front (also
    // sidesteps a GCC 12 -Wstringop-overflow false positive on insert-into-
    // reserved-vector).
    Bytes blob(kHeader + weights.size() * 4);
    std::memcpy(blob.data(), kMagic, 4);
    blob[4] = kVersion;
    const Bytes count = be_bytes(weights.size());
    std::memcpy(blob.data() + 5, count.data(), count.size());
    if (!weights.empty()) {
        std::memcpy(blob.data() + kHeader, weights.data(),
                    weights.size() * 4);
    }
    const Hash32 digest = crypto::keccak256(blob);
    blob.reserve(blob.size() + kDigest);
    append(blob, digest.view());
    return blob;
}

std::vector<float> deserialize_weights(BytesView blob) {
    if (blob.size() < kHeader + kDigest) throw DecodeError("weights: too short");
    for (std::size_t i = 0; i < 4; ++i) {
        if (blob[i] != kMagic[i]) throw DecodeError("weights: bad magic");
    }
    if (blob[4] != kVersion) throw DecodeError("weights: bad version");
    const std::uint64_t count = be_u64(blob.subspan(5, 8));
    if (count > kMaxWeights) {
        // Also guards the size check below: count * 4 can no longer wrap.
        throw DecodeError("weights: parameter count exceeds cap");
    }
    if (blob.size() != kHeader + count * 4 + kDigest) {
        throw DecodeError("weights: length mismatch");
    }
    const Hash32 expected =
        crypto::keccak256(blob.subspan(0, blob.size() - kDigest));
    const Hash32 stored = Hash32::from(blob.subspan(blob.size() - kDigest));
    if (expected != stored) throw DecodeError("weights: digest mismatch");
    std::vector<float> weights(count);
    if (count != 0) {
        // An empty vector's data() may be null, and memcpy's contract
        // forbids null even for zero-length copies (UBSan enforces this).
        std::memcpy(weights.data(), blob.data() + kHeader, count * 4);
    }
    return weights;
}

Hash32 weights_digest(BytesView blob) {
    if (blob.size() < kDigest) throw DecodeError("weights: too short");
    return Hash32::from(blob.subspan(blob.size() - kDigest));
}

Hash32 weights_digest(std::span<const float> weights) {
    return weights_digest(serialize_weights(weights));
}

}  // namespace bcfl::ml
