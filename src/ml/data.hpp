// SyntheticCifar: a procedural 10-class colour-image generator standing in
// for CIFAR-10 (no datasets are downloadable in this environment — see
// DESIGN.md §3 for why the substitution preserves the paper's phenomena).
//
// Each class has a smooth random "texture" prototype; samples are the
// prototype under brightness/contrast jitter, spatial shift and pixel noise.
// Clients receive non-IID shards via a Dirichlet(alpha) prior over classes,
// which is what makes single-client models generalize worse than aggregated
// ones (the effect Tables II-IV measure).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"

namespace bcfl::ml {

struct Dataset {
    Tensor images;            // {N, C, H, W}
    std::vector<int> labels;  // N entries in [0, classes)

    [[nodiscard]] std::size_t size() const { return labels.size(); }
    /// Rows [begin, end) as a batch tensor + labels.
    [[nodiscard]] std::pair<Tensor, std::vector<int>> batch(
        std::size_t begin, std::size_t end) const;
    /// Subset by indices.
    [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;
};

struct SyntheticCifarConfig {
    std::size_t classes = 10;
    std::size_t channels = 3;
    std::size_t height = 12;
    std::size_t width = 12;
    std::size_t clients = 3;
    std::size_t train_per_client = 900;
    std::size_t test_per_client = 400;
    std::size_t global_test = 1000;
    double dirichlet_alpha = 0.5;  // < 1: heterogeneous clients
    double noise_std = 0.25;
    // Intra-class augmentation jitter; larger values make the task harder.
    float contrast_jitter = 0.2f;   // contrast in [1-j, 1+j]
    float brightness_jitter = 0.1f; // brightness in [-j, +j]
    float shift_jitter = 0.15f;     // texture shift in [-j, +j]
    std::uint64_t seed = 42;
};

struct FederatedData {
    std::vector<Dataset> client_train;
    std::vector<Dataset> client_test;
    Dataset global_test;
    SyntheticCifarConfig config;
};

/// Generates the full federated split deterministically from config.seed.
[[nodiscard]] FederatedData make_synthetic_cifar(
    const SyntheticCifarConfig& config);

/// A single IID dataset from the same generator family but a shifted seed —
/// used to pre-train the EffNetLite backbone (the transfer-learning source
/// domain standing in for ImageNet).
[[nodiscard]] Dataset make_pretrain_dataset(const SyntheticCifarConfig& config,
                                            std::size_t samples,
                                            std::uint64_t seed_offset = 777);

}  // namespace bcfl::ml
