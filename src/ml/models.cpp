#include "ml/models.hpp"

#include <memory>

namespace bcfl::ml {

Sequential make_simple_nn(const InputDims& dims, std::uint64_t seed,
                          std::size_t hidden) {
    Rng rng(seed);
    Sequential model;
    model.add(std::make_unique<Flatten>());
    model.add(std::make_unique<Dense>(dims.flat(), hidden, rng));
    model.add(std::make_unique<Relu>());
    model.add(std::make_unique<Dense>(hidden, dims.classes, rng));
    return model;
}

EffNetLite make_effnet_lite(const InputDims& dims, std::uint64_t seed,
                            std::size_t width_base) {
    Rng rng(seed);
    EffNetLite model;
    const std::size_t c1 = width_base;      // stem channels
    const std::size_t c2 = width_base * 2;  // after first MBConv
    const std::size_t c3 = width_base * 4;  // after second MBConv

    // Stem.
    model.backbone.add(
        std::make_unique<Conv2d>(dims.channels, c1, 3, 1, 1, rng));
    model.backbone.add(std::make_unique<Swish>());
    // MBConv-lite block 1 (depthwise stride 2 + pointwise expand).
    model.backbone.add(std::make_unique<DepthwiseConv2d>(c1, 3, 2, 1, rng));
    model.backbone.add(std::make_unique<Conv2d>(c1, c2, 1, 1, 0, rng));
    model.backbone.add(std::make_unique<Swish>());
    // MBConv-lite block 2.
    model.backbone.add(std::make_unique<DepthwiseConv2d>(c2, 3, 2, 1, rng));
    model.backbone.add(std::make_unique<Conv2d>(c2, c3, 1, 1, 0, rng));
    model.backbone.add(std::make_unique<Swish>());
    // Pool to an embedding.
    model.backbone.add(std::make_unique<GlobalAvgPool>());
    model.embed_dim = c3;

    // Classifier head (the transfer-learning fine-tune target).
    model.head.add(std::make_unique<Dense>(c3, dims.classes, rng));
    return model;
}

Dataset embed_dataset(EffNetLite& model, const Dataset& data,
                      std::size_t batch_size) {
    Dataset out;
    out.labels = data.labels;
    out.images = Tensor({data.size(), model.embed_dim});
    for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
        const std::size_t end = std::min(begin + batch_size, data.size());
        auto [batch, labels] = data.batch(begin, end);
        (void)labels;
        const Tensor features = model.backbone.forward(batch, false);
        std::copy(features.data(), features.data() + features.size(),
                  out.images.data() + begin * model.embed_dim);
    }
    return out;
}

}  // namespace bcfl::ml
