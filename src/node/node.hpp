// Full node ("geth-lite"): blockchain + mempool + PoW miner + gossip.
//
// One Node corresponds to one of the paper's Geth peers. Mining time is
// simulated (exponential with mean difficulty/hash_rate — the memoryless
// property makes restart-on-new-head statistically exact), but every sealed
// block carries a real PoW nonce and every import re-validates it.
//
// `set_compute_load` models the paper's observed dual-duty resource
// exhaustion: while a peer trains, its effective hash rate drops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/txpool.hpp"
#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"
#include "net/transport.hpp"
#include "node/executor.hpp"
#include "vm/registry_contract.hpp"

namespace bcfl::node {

struct NodeConfig {
    chain::ChainConfig chain;
    std::uint64_t key_seed = 1;
    double hash_rate = 200.0;  // hashes/second, drives simulated mining time
    bool mine = true;
    std::uint64_t rng_seed = 7;
    /// Cap on real nonce-search effort when sealing (safety valve).
    std::uint64_t max_seal_attempts = 50'000'000;
    /// Gossip overlay: when non-empty, this node's broadcasts go only to
    /// the listed peers (flood-with-dedup over the overlay graph) instead
    /// of the full mesh. Hierarchical deployments (core/topology.hpp) use
    /// a two-level overlay — members link only to their cluster head,
    /// heads form a mesh among themselves plus their members — so a
    /// broadcast costs O(peers + heads^2) sends instead of O(peers^2).
    /// Empty (the default) preserves the full-mesh flood exactly.
    std::vector<net::NodeId> neighbors;
    /// When non-empty, *transaction* gossip uses this subset instead of
    /// `neighbors`. Non-mining leaves have no use for foreign txs (they
    /// follow the chain via block gossip), and at ~300 us per signature
    /// check, pool admission at every leaf dominates large-roster runs —
    /// so hierarchical overlays route txs only toward the miners.
    std::vector<net::NodeId> tx_neighbors;
    /// Generation size of the gossip-dedup set: when the current
    /// generation reaches this many hashes it becomes the previous one and
    /// the oldest generation is dropped, bounding memory at ~2x the cap
    /// instead of one 32-byte hash per tx/block forever. Large enough that
    /// anything still circulating in gossip is remembered; a forgotten
    /// hash only costs a duplicate import (rejected as such) or a pool
    /// re-admission check.
    std::size_t gossip_seen_cap = 32'768;
};

struct NodeStats {
    std::uint64_t blocks_mined = 0;
    std::uint64_t blocks_imported = 0;
    std::uint64_t blocks_rejected = 0;
    std::uint64_t txs_submitted = 0;
    std::uint64_t reorgs = 0;
    /// Ancestor-sync protocol traffic (see handle_message: get_block).
    std::uint64_t blocks_requested = 0;
    std::uint64_t block_requests_served = 0;
    /// Gossip-dedup hashes dropped by generational rotation (memory bound).
    std::uint64_t seen_evictions = 0;
    /// Pool txs dropped because their nonce was already satisfied on the
    /// canonical chain (e.g. a mined tx's duplicate re-admitted through
    /// gossip after its hash left the bounded dedup set).
    std::uint64_t stale_txs_pruned = 0;
};

class Node {
public:
    Node(net::Transport& transport, NodeConfig config);

    /// Begins mining (if enabled). Call after all nodes are constructed.
    void start();

    /// Local API (web3.eth.sendTransaction): pool + gossip.
    void submit_tx(const chain::Transaction& tx);

    /// eth_call at the current head (view functions of the registry).
    [[nodiscard]] vm::CallResult call_view(Bytes calldata) const;

    [[nodiscard]] const chain::Blockchain& chain() const { return *chain_; }
    [[nodiscard]] const vm::WorldState& head_state() const;
    /// The transport this node was registered on — the peer layer reaches
    /// the clock and its timers through here, never a backend directly.
    [[nodiscard]] net::Transport& transport() const { return transport_; }
    [[nodiscard]] net::NodeId id() const { return id_; }
    [[nodiscard]] const crypto::KeyPair& key() const { return key_; }
    [[nodiscard]] Address address() const { return key_.address(); }
    [[nodiscard]] const NodeStats& stats() const { return stats_; }
    [[nodiscard]] const VmBlockExecutor& executor() const { return *executor_; }

    /// Fraction of CPU consumed by non-mining work (training); reduces the
    /// effective hash rate to hash_rate * (1 - load).
    void set_compute_load(double load);
    [[nodiscard]] double compute_load() const { return compute_load_; }

    using HeadCallback = std::function<void(const chain::Block&)>;
    void on_new_head(HeadCallback callback) {
        head_callbacks_.push_back(std::move(callback));
    }

    /// Current gossip-dedup footprint (both generations); bounded at
    /// ~2 * NodeConfig::gossip_seen_cap entries.
    [[nodiscard]] std::size_t gossip_seen_size() const {
        return seen_now_.size() + seen_prev_.size();
    }

    /// The configured generation cap the footprint above is bounded by.
    [[nodiscard]] std::size_t gossip_seen_cap() const {
        return config_.gossip_seen_cap;
    }

    /// Blocks currently waiting in the orphan buffer for a missing parent.
    [[nodiscard]] std::size_t orphan_blocks_buffered() const {
        return orphan_parent_.size();
    }

    /// Transactions currently pooled (bounded by prune_stale amortization).
    [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }

    /// Builds the genesis world state shared by all nodes: the model
    /// registry contract deployed at its well-known address.
    static vm::WorldState genesis_state();

private:
    enum class MsgKind : std::uint8_t { tx = 1, block = 2, get_block = 3 };

    void handle_message(net::NodeId from, const Bytes& message);
    void handle_block(net::NodeId from, const chain::Block& block);
    void import_block(const chain::Block& block, bool relay,
                      net::NodeId origin);
    /// Asks `peer` for the block with the given hash (ancestor sync: after
    /// a partition heals, gossiped heads reference unknown parents; walking
    /// the parent chain back to the fork point reconnects the forks).
    void request_block(net::NodeId peer, const Hash32& hash);
    /// Gossip dedup with bounded memory: two generations rotated when the
    /// current one reaches NodeConfig::gossip_seen_cap.
    [[nodiscard]] bool already_seen(const Hash32& id) const;
    void mark_seen(const Hash32& id);
    /// Follows the orphan buffer from `hash` to the earliest ancestor we
    /// do not hold at all — the next block actually worth requesting.
    [[nodiscard]] Hash32 earliest_missing_ancestor(Hash32 hash) const;
    void retry_orphans();
    void schedule_mining();
    void on_block_found(std::uint64_t generation);
    void broadcast(MsgKind kind, const Bytes& body);
    void notify_new_head();

    net::Transport& transport_;
    NodeConfig config_;
    crypto::KeyPair key_;
    Rng rng_;
    std::shared_ptr<VmBlockExecutor> executor_;
    std::unique_ptr<chain::Blockchain> chain_;
    chain::TxPool pool_;
    net::NodeId id_ = 0;
    NodeStats stats_;
    double compute_load_ = 0.0;
    std::uint64_t mining_generation_ = 0;
    // Head changes since the last stale-tx prune (see import_block): the
    // pool scan is amortized so imports stay O(new work).
    std::uint64_t heads_since_prune_ = 0;
    bool started_ = false;
    // Generational gossip-dedup: lookups consult both sets; inserts go to
    // seen_now_, which rotates into seen_prev_ at the cap (see mark_seen).
    std::unordered_set<Hash32, FixedBytesHasher> seen_now_;
    std::unordered_set<Hash32, FixedBytesHasher> seen_prev_;
    std::unordered_map<Hash32, std::vector<chain::Block>, FixedBytesHasher>
        orphans_;  // parent hash -> waiting blocks
    std::unordered_map<Hash32, Hash32, FixedBytesHasher>
        orphan_parent_;  // buffered block hash -> its parent hash, so the
                         // ancestor walk is O(1) per step (no rehashing)
    std::vector<HeadCallback> head_callbacks_;
};

}  // namespace bcfl::node
