// VmBlockExecutor: deterministic block execution against MiniEVM world state.
//
// Each node owns one executor; results are cached by (parent hash, tx root)
// so sealing a block and re-importing it does not execute twice, and the
// post-state of every imported block stays queryable (eth_call at head).
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "chain/blockchain.hpp"
#include "vm/evm.hpp"
#include "vm/state.hpp"

namespace bcfl::node {

class VmBlockExecutor final : public chain::BlockExecutor {
public:
    explicit VmBlockExecutor(chain::GasSchedule gas = {})
        : vm_(gas), gas_(gas) {}

    /// Registers the genesis world state under the genesis header.
    void register_genesis(const chain::BlockHeader& genesis,
                          vm::WorldState state);

    chain::ExecutionResult execute(const chain::BlockHeader& parent,
                                   const chain::Block& block) override;

    /// Post-state of a block (throws if the block was never executed).
    [[nodiscard]] const vm::WorldState& state_after(
        const chain::BlockHeader& header) const;

    [[nodiscard]] const vm::Vm& vm() const { return vm_; }

private:
    using Key = std::pair<Hash32, Hash32>;  // (parent hash, tx root)

    struct Entry {
        vm::WorldState state;
        chain::ExecutionResult result;
    };

    vm::Vm vm_;
    chain::GasSchedule gas_;
    std::map<Key, Entry> cache_;
    bool has_genesis_ = false;
    Hash32 genesis_hash_;
    vm::WorldState genesis_state_;
};

}  // namespace bcfl::node
