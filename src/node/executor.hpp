// VmBlockExecutor: deterministic block execution against MiniEVM world state.
//
// Each node owns one executor; results are cached by (parent hash, tx root)
// so sealing a block and re-importing it does not execute twice, and the
// post-state of every imported block stays queryable (eth_call at head).
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "chain/blockchain.hpp"
#include "vm/analysis.hpp"
#include "vm/evm.hpp"
#include "vm/state.hpp"

namespace bcfl::node {

class VmBlockExecutor final : public chain::BlockExecutor {
public:
    explicit VmBlockExecutor(chain::GasSchedule gas = {})
        : analysis_cache_(std::make_shared<vm::AnalysisCache>(gas)),
          vm_(gas, vm::VmLimits{}, analysis_cache_),
          gas_(gas) {}

    /// Registers the genesis world state under the genesis header.
    void register_genesis(const chain::BlockHeader& genesis,
                          vm::WorldState state);

    chain::ExecutionResult execute(const chain::BlockHeader& parent,
                                   const chain::Block& block) override;

    /// Post-state of a block (throws if the block was never executed).
    [[nodiscard]] const vm::WorldState& state_after(
        const chain::BlockHeader& header) const;

    [[nodiscard]] const vm::Vm& vm() const { return vm_; }

    /// Shared Vm/executor analysis cache (hit/miss stats feed the
    /// vm_analysis bench section).
    [[nodiscard]] const vm::AnalysisCache& analysis_cache() const {
        return *analysis_cache_;
    }

    /// Deterministic address for a contract created by (sender, nonce):
    /// last 20 bytes of keccak256(sender || nonce_be64).
    [[nodiscard]] static Address creation_address(const Address& sender,
                                                  std::uint64_t nonce);

private:
    using Key = std::pair<Hash32, Hash32>;  // (parent hash, tx root)

    struct Entry {
        vm::WorldState state;
        chain::ExecutionResult result;
    };

    std::shared_ptr<vm::AnalysisCache> analysis_cache_;
    vm::Vm vm_;
    chain::GasSchedule gas_;
    std::map<Key, Entry> cache_;
    bool has_genesis_ = false;
    Hash32 genesis_hash_;
    vm::WorldState genesis_state_;
};

}  // namespace bcfl::node
