#include "node/node.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace bcfl::node {

vm::WorldState Node::genesis_state() {
    vm::WorldState state;
    state.deploy(vm::registry_address(), vm::registry_bytecode());
    return state;
}

Node::Node(net::Transport& transport, NodeConfig config)
    : transport_(transport),
      config_(config),
      key_(crypto::KeyPair::from_seed(config.key_seed)),
      rng_(config.rng_seed ^ config.key_seed * 0x9e3779b97f4a7c15ull),
      executor_(std::make_shared<VmBlockExecutor>(config.chain.gas)),
      pool_(config.chain.gas) {
    // Genesis must commit to the registry-bearing state.
    vm::WorldState genesis = genesis_state();
    const Hash32 genesis_root = genesis.state_root();
    config_.chain.genesis_timestamp_ms = 0;
    chain_ = std::make_unique<chain::Blockchain>(config_.chain, executor_);
    // The default genesis has a zero state root; rebuild it with the real
    // root so view calls at genesis resolve. Blockchain's genesis is
    // internal, so instead register the state under the genesis header.
    (void)genesis_root;
    executor_->register_genesis(chain_->genesis().header, std::move(genesis));
    id_ = transport_.add_node(
        [this](net::NodeId from, const Bytes& msg) { handle_message(from, msg); });
}

void Node::start() {
    if (started_) return;
    started_ = true;
    schedule_mining();
}

void Node::submit_tx(const chain::Transaction& tx) {
    if (!pool_.add(tx)) return;
    ++stats_.txs_submitted;
    mark_seen(tx.hash());
    broadcast(MsgKind::tx, tx.encode());
}

bool Node::already_seen(const Hash32& id) const {
    return seen_now_.contains(id) || seen_prev_.contains(id);
}

void Node::mark_seen(const Hash32& id) {
    if (!seen_now_.insert(id).second) return;
    if (seen_now_.size() < std::max<std::size_t>(config_.gossip_seen_cap, 1)) {
        return;
    }
    // Generational rotation: the oldest generation is dropped wholesale —
    // bounded memory instead of one hash per tx/block ever gossiped. A
    // dropped hash that resurfaces costs only a duplicate chain import or
    // a mempool admission check, both cheap and idempotent.
    stats_.seen_evictions += seen_prev_.size();
    seen_prev_ = std::move(seen_now_);
    seen_now_.clear();
}

vm::CallResult Node::call_view(Bytes calldata) const {
    vm::CallContext ctx;
    ctx.contract = vm::registry_address();
    ctx.caller = key_.address();
    ctx.calldata = calldata;
    ctx.gas_limit = 500'000'000;
    ctx.block_number = chain_->head().number;
    ctx.timestamp_ms = chain_->head().timestamp_ms;
    return executor_->vm().static_call(head_state(), ctx);
}

const vm::WorldState& Node::head_state() const {
    return executor_->state_after(chain_->head());
}

void Node::set_compute_load(double load) {
    if (load < 0.0) load = 0.0;
    if (load > 0.999) load = 0.999;
    compute_load_ = load;
    // Memoryless mining: rescheduling with the new rate is statistically
    // equivalent to continuing.
    if (started_) schedule_mining();
}

void Node::broadcast(MsgKind kind, const Bytes& body) {
    Bytes message;
    message.reserve(body.size() + 1);
    message.push_back(static_cast<std::uint8_t>(kind));
    append(message, body);
    // Overlay-restricted flood: txs may take a narrower overlay than
    // blocks (see NodeConfig::tx_neighbors). An empty list means the full
    // mesh, the historical behavior.
    const std::vector<net::NodeId>& overlay =
        (kind == MsgKind::tx && !config_.tx_neighbors.empty())
            ? config_.tx_neighbors
            : config_.neighbors;
    if (overlay.empty()) {
        transport_.broadcast(id_, message);
        return;
    }
    for (net::NodeId to : overlay) transport_.send(id_, to, message);
}

void Node::handle_message(net::NodeId from, const Bytes& message) {
    if (message.empty()) return;
    const auto kind = static_cast<MsgKind>(message[0]);
    const BytesView body = BytesView(message).subspan(1);
    try {
        switch (kind) {
            case MsgKind::tx: {
                const chain::Transaction tx = chain::Transaction::decode(body);
                const Hash32 id = tx.hash();
                if (already_seen(id)) return;
                mark_seen(id);
                if (pool_.add(tx)) broadcast(MsgKind::tx, tx.encode());
                return;
            }
            case MsgKind::block: {
                const chain::Block block = chain::Block::decode(body);
                handle_block(from, block);
                return;
            }
            case MsgKind::get_block: {
                if (body.size() != 32) return;
                const Hash32 wanted = Hash32::from(body);
                if (const chain::Block* found =
                        chain_->block_by_hash(wanted)) {
                    ++stats_.block_requests_served;
                    Bytes reply;
                    const Bytes encoded = found->encode();
                    reply.reserve(encoded.size() + 1);
                    reply.push_back(
                        static_cast<std::uint8_t>(MsgKind::block));
                    append(reply, encoded);
                    transport_.send(id_, from, std::move(reply));
                }
                return;
            }
        }
    } catch (const Error&) {
        // Malformed gossip is dropped, matching devp2p behaviour.
    }
}

void Node::handle_block(net::NodeId from, const chain::Block& block) {
    const Hash32 id = block.hash();
    if (already_seen(id)) return;
    mark_seen(id);
    import_block(block, /*relay=*/true, from);
}

Hash32 Node::earliest_missing_ancestor(Hash32 hash) const {
    // Chase through the orphan buffer: if the "missing" block is itself
    // buffered, what we actually lack is *its* parent, and so on. Each
    // step is one map lookup; a hash cycle is impossible (a header commits
    // to its parent hash), but cap the walk at the buffer size anyway.
    for (std::size_t steps = 0; steps <= orphan_parent_.size(); ++steps) {
        const auto it = orphan_parent_.find(hash);
        if (it == orphan_parent_.end()) break;
        hash = it->second;
    }
    return hash;
}

void Node::request_block(net::NodeId peer, const Hash32& hash) {
    // No in-flight bookkeeping: a request (or its reply) lost to the same
    // fault that orphaned the block is retried naturally, because every
    // subsequently gossiped descendant re-enters import as an orphan and
    // asks again. Requests are 33 bytes; duplicates are cheap.
    if (already_seen(hash) || chain_->block_by_hash(hash) != nullptr) {
        return;  // already held (imported, buffered, or rejected for cause)
    }
    ++stats_.blocks_requested;
    Bytes message;
    message.reserve(33);
    message.push_back(static_cast<std::uint8_t>(MsgKind::get_block));
    append(message, hash.view());
    transport_.send(id_, peer, std::move(message));
}

void Node::import_block(const chain::Block& block, bool relay,
                        net::NodeId origin) {
    const chain::ImportResult result = chain_->import_block(block);
    switch (result.status) {
        case chain::ImportStatus::added_head: {
            ++stats_.blocks_imported;
            if (result.reorged) {
                ++stats_.reorgs;
                pool_.reinject(result.abandoned_txs);
            }
            pool_.remove(block.transactions);
            // Head changes can strand below-nonce txs in the pool (mined
            // duplicates re-admitted after seen-set eviction, replaced
            // same-nonce siblings, reorg leftovers); they are
            // unselectable forever, so drop them — on every reorg, and
            // otherwise every few heads so the O(pool) scan amortizes to
            // O(new work) per import. Stale txs are harmless while they
            // wait: select() can never pick them.
            constexpr std::uint64_t kPruneHeadInterval = 16;
            if (result.reorged ||
                ++heads_since_prune_ >= kPruneHeadInterval) {
                stats_.stale_txs_pruned +=
                    pool_.prune_stale(chain_->account_nonces());
                heads_since_prune_ = 0;
            }
            if (relay) broadcast(MsgKind::block, block.encode());
            notify_new_head();
            retry_orphans();
            if (started_) schedule_mining();
            return;
        }
        case chain::ImportStatus::added_side:
            ++stats_.blocks_imported;
            if (relay) broadcast(MsgKind::block, block.encode());
            retry_orphans();
            return;
        case chain::ImportStatus::orphan: {
            // Idempotent buffering: after a seen-set rotation the same
            // orphan can be re-delivered — never store a second copy.
            const Hash32 id = block.hash();
            if (!orphan_parent_.contains(id)) {
                orphans_[block.header.parent_hash].push_back(block);
                orphan_parent_[id] = block.header.parent_hash;
            }
            // Ancestor sync: ask whoever sent us this block for the
            // earliest ancestor we lack (one hop per request; each reply is
            // itself an orphan until the fork point connects).
            if (origin != id_) {
                request_block(
                    origin,
                    earliest_missing_ancestor(block.header.parent_hash));
            }
            return;
        }
        case chain::ImportStatus::duplicate:
            return;
        case chain::ImportStatus::rejected:
            ++stats_.blocks_rejected;
            return;
    }
}

void Node::retry_orphans() {
    // Any buffered child whose parent is now known can be imported.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto it = orphans_.begin(); it != orphans_.end();) {
            if (chain_->block_by_hash(it->first) != nullptr) {
                std::vector<chain::Block> children = std::move(it->second);
                it = orphans_.erase(it);
                for (const chain::Block& child : children) {
                    orphan_parent_.erase(child.hash());
                    import_block(child, /*relay=*/true, id_);
                }
                progressed = true;
                break;  // maps mutated; restart scan
            }
            ++it;
        }
    }
}

void Node::schedule_mining() {
    if (!config_.mine) return;
    const std::uint64_t generation = ++mining_generation_;
    const double effective_rate =
        config_.hash_rate * (1.0 - compute_load_);
    const std::uint64_t difficulty =
        chain_->child_difficulty(chain_->head(), net::to_ms(transport_.now()));
    const double mean_seconds =
        static_cast<double>(difficulty) / std::max(effective_rate, 1e-9);
    const double delay_seconds = rng_.exponential(mean_seconds);
    const auto delay = static_cast<net::SimTime>(delay_seconds * 1e6) + 1;
    transport_.schedule_after(
        id_, delay, [this, generation] { on_block_found(generation); });
}

void Node::on_block_found(std::uint64_t generation) {
    if (generation != mining_generation_) return;  // head moved; stale event
    const std::uint64_t timestamp = net::to_ms(transport_.now());
    const auto txs =
        pool_.select(config_.chain.block_gas_limit, chain_->account_nonces());
    chain::Block block = chain_->build_block(key_.address(), txs, timestamp);
    const auto nonce =
        chain::mine_seal(block.header, rng_.next_u64(), config_.max_seal_attempts);
    if (!nonce.has_value()) {
        // Difficulty outran the safety cap; back off and retry.
        schedule_mining();
        return;
    }
    block.header.pow_nonce = *nonce;
    ++stats_.blocks_mined;
    mark_seen(block.hash());
    import_block(block, /*relay=*/true, id_);
    // import_block scheduled the next round via added_head.
}

void Node::notify_new_head() {
    const chain::Block* head = chain_->block_by_hash(chain_->head_hash());
    for (const HeadCallback& callback : head_callbacks_) callback(*head);
}

}  // namespace bcfl::node
