#include "node/executor.hpp"

#include "common/error.hpp"
#include "crypto/keccak.hpp"

namespace bcfl::node {

Address VmBlockExecutor::creation_address(const Address& sender,
                                          std::uint64_t nonce) {
    Bytes preimage(sender.data.begin(), sender.data.end());
    for (int shift = 56; shift >= 0; shift -= 8) {
        preimage.push_back(static_cast<std::uint8_t>(nonce >> shift));
    }
    const Hash32 digest = crypto::keccak256(preimage);
    return Address::from(BytesView{digest.data.data() + 12, 20});
}

void VmBlockExecutor::register_genesis(const chain::BlockHeader& genesis,
                                       vm::WorldState state) {
    genesis_hash_ = genesis.hash();
    genesis_state_ = std::move(state);
    has_genesis_ = true;
}

chain::ExecutionResult VmBlockExecutor::execute(
    const chain::BlockHeader& parent, const chain::Block& block) {
    const Key key{parent.hash(), block.compute_tx_root()};
    if (const auto it = cache_.find(key); it != cache_.end()) {
        return it->second.result;
    }

    // Resolve the parent state.
    const vm::WorldState* parent_state = nullptr;
    if (has_genesis_ && parent.hash() == genesis_hash_) {
        parent_state = &genesis_state_;
    } else {
        const Key parent_key{parent.parent_hash, parent.tx_root};
        const auto it = cache_.find(parent_key);
        if (it == cache_.end()) {
            throw Error("executor: unknown parent state");
        }
        parent_state = &it->second.state;
    }

    Entry entry;
    entry.state = *parent_state;
    chain::ExecutionResult& result = entry.result;

    for (std::size_t tx_index = 0; tx_index < block.transactions.size();
         ++tx_index) {
        const chain::Transaction& tx = block.transactions[tx_index];
        chain::Receipt receipt;
        const std::uint64_t intrinsic = chain::intrinsic_gas(gas_, tx);
        if (tx.to == Address{} && !tx.data.empty()) {
            // Contract creation: the payload is the bytecode. Installation
            // is gated on static analysis — invalid code is refused with a
            // typed, offset-carrying diagnostic, and the tx burns its gas
            // while the block still imports deterministically.
            const std::uint64_t deploy_gas =
                gas_.vm_deploy_byte * tx.data.size();
            const Address target = creation_address(tx.sender(), tx.nonce);
            if (tx.gas_limit < intrinsic + deploy_gas ||
                entry.state.has_contract(target)) {
                receipt.success = false;
                receipt.gas_used = tx.gas_limit;
            } else {
                const auto analysis =
                    entry.state.install(target, tx.data, *analysis_cache_);
                if (analysis->valid()) {
                    receipt.success = true;
                    receipt.gas_used = intrinsic + deploy_gas;
                    receipt.return_data.assign(target.data.begin(),
                                               target.data.end());
                } else {
                    const vm::Diagnostic* fatal = analysis->first_fatal();
                    receipt.success = false;
                    receipt.gas_used = tx.gas_limit;
                    receipt.return_data = str_bytes(fatal->message);
                    result.rejected_installs.push_back(
                        {tx_index, fatal->name, fatal->offset,
                         fatal->message});
                }
            }
        } else if (entry.state.has_contract(tx.to)) {
            vm::CallContext ctx;
            ctx.contract = tx.to;
            ctx.caller = tx.sender();
            ctx.calldata = tx.data;
            ctx.gas_limit = tx.gas_limit - intrinsic;
            ctx.block_number = block.header.number;
            ctx.timestamp_ms = block.header.timestamp_ms;
            const vm::CallResult call = vm_.call(entry.state, ctx);
            receipt.success = call.success;
            receipt.gas_used = intrinsic + call.gas_used;
            receipt.logs = call.logs;
            receipt.return_data = call.return_data;
        } else {
            // Plain value-less transfer to an externally-owned account.
            receipt.success = true;
            receipt.gas_used = intrinsic;
        }
        result.gas_used += receipt.gas_used;
        result.receipts.push_back(std::move(receipt));
    }
    result.state_root = entry.state.state_root();

    const auto [it, inserted] = cache_.emplace(key, std::move(entry));
    (void)inserted;
    return it->second.result;
}

const vm::WorldState& VmBlockExecutor::state_after(
    const chain::BlockHeader& header) const {
    if (has_genesis_ && header.hash() == genesis_hash_) return genesis_state_;
    const Key key{header.parent_hash, header.tx_root};
    const auto it = cache_.find(key);
    if (it == cache_.end()) throw Error("executor: state not available");
    return it->second.state;
}

}  // namespace bcfl::node
