// bcfl_cli — command-line driver for custom experiments.
//
// Run any deployment configuration without recompiling:
//
//   $ ./build/examples/bcfl_cli --model=simple --rounds=4 --wait-policy=wait_for=2
//   $ ./build/examples/bcfl_cli --wait-policy=adaptive,base=60s,max=300s
//   $ ./build/examples/bcfl_cli --agg=trimmed_mean,trim=1 --poison=2
//   $ ./build/examples/bcfl_cli --agg staleness_fedavg,half_life=2r --straggler=2
//   $ ./build/examples/bcfl_cli --wait-policy schedule,1-5:wait_all,6+:deadline=600s
//   $ ./build/examples/bcfl_cli --mode=vanilla --policy=consider
//
// Flags (all optional, "--flag=VALUE" or "--flag VALUE"):
//   --mode=decentralized|vanilla   experiment family        [decentralized]
//   --model=simple|effnet          model family             [simple]
//   --rounds=N                     communication rounds     [3]
//   --wait-policy=SPEC             WaitPolicy factory spec (core/policy.hpp):
//                                  wait_for=K[,timeout=T] | wait_all[,...]
//                                  | deadline=T | adaptive[,base=T]
//                                  [,extend=T][,max=T]
//                                  | schedule,1-5:SPEC,6+:SPEC
//   --agg=SPEC                     AggregationStrategy factory spec:
//                                  best_combination[,fitness=F] |
//                                  fedavg_all | trimmed_mean[,trim=M] |
//                                  staleness_fedavg[,half_life=Nr|T] |
//                                  reputation[,alpha=A][,floor=L]
//   --alpha=F                      Dirichlet heterogeneity  [30.0]
//   --train=N                      samples per client       [300]
//   --seed=N                       experiment seed          [2024]
//   --poison=I                     peer index publishing poisoned updates
//   --straggler=I                  peer index training slowly (see
//                                  --straggler-train)
//   --straggler-train=SECONDS      straggler training time  [400]
//   --policy=consider|not-consider vanilla aggregation      [consider]
//   --pad=BYTES                    payload ballast (chain)  [0]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "core/paper_setup.hpp"
#include "core/policy.hpp"
#include "fl/vanilla.hpp"

namespace {

using namespace bcfl;

struct CliOptions {
    std::string mode = "decentralized";
    std::string model = "simple";
    std::string policy = "consider";
    std::string wait_policy;  // WaitPolicy factory spec (core/policy.hpp)
    std::string agg;          // AggregationStrategy factory spec
    std::size_t rounds = 3;
    double alpha = 30.0;
    std::size_t train = 300;
    std::uint64_t seed = 2024;
    int poison = -1;
    int straggler = -1;
    std::size_t straggler_train = 400;  // seconds
    std::size_t pad = 0;
};

/// Accepts both "--name=value" and "--name value" spellings.
bool parse_flag(int argc, char** argv, int& i, const char* name,
                std::string& out) {
    const char* arg = argv[i];
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0) return false;
    if (arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    if (arg[n] == '\0' && i + 1 < argc) {
        out = argv[++i];
        return true;
    }
    return false;
}

CliOptions parse(int argc, char** argv) {
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (parse_flag(argc, argv, i, "--mode", value)) options.mode = value;
        else if (parse_flag(argc, argv, i, "--model", value)) options.model = value;
        else if (parse_flag(argc, argv, i, "--policy", value)) options.policy = value;
        else if (parse_flag(argc, argv, i, "--wait-policy", value)) options.wait_policy = value;
        else if (parse_flag(argc, argv, i, "--agg", value)) options.agg = value;
        else if (parse_flag(argc, argv, i, "--rounds", value)) options.rounds = std::stoul(value);
        else if (parse_flag(argc, argv, i, "--alpha", value)) options.alpha = std::stod(value);
        else if (parse_flag(argc, argv, i, "--train", value)) options.train = std::stoul(value);
        else if (parse_flag(argc, argv, i, "--seed", value)) options.seed = std::stoull(value);
        else if (parse_flag(argc, argv, i, "--poison", value)) options.poison = std::stoi(value);
        else if (parse_flag(argc, argv, i, "--straggler", value)) options.straggler = std::stoi(value);
        else if (parse_flag(argc, argv, i, "--straggler-train", value)) options.straggler_train = std::stoul(value);
        else if (parse_flag(argc, argv, i, "--pad", value)) options.pad = std::stoul(value);
        else {
            std::fprintf(stderr, "unknown flag: %s (see header comment)\n",
                         argv[i]);
            // exit: argv parsing happens on the main thread before any
            // transport or engine thread is spawned.
            std::exit(2);  // NOLINT(concurrency-mt-unsafe)
        }
    }
    return options;
}

fl::FlTask build_task(const CliOptions& options,
                      const ml::FederatedData& data) {
    if (options.model == "effnet") return core::paper_effnet_task(data);
    return core::paper_simple_task(data);
}

int run_vanilla_mode(const CliOptions& options, const fl::FlTask& task) {
    fl::VanillaConfig config;
    config.rounds = options.rounds;
    config.seed = options.seed;
    config.mode = options.policy == "not-consider"
                      ? fl::AggregationMode::not_consider
                      : fl::AggregationMode::consider;
    const fl::VanillaResult result = run_vanilla(task, config);
    std::printf("round");
    for (std::size_t c = 0; c < task.clients; ++c) {
        std::printf("  client-%c", static_cast<char>('A' + c));
    }
    std::printf("  chosen\n");
    for (std::size_t r = 0; r < result.rounds.size(); ++r) {
        std::printf("%5zu", r + 1);
        for (double acc : result.rounds[r].client_accuracy) {
            std::printf("  %8.4f", acc);
        }
        std::printf("  %s\n",
                    fl::combination_label(result.rounds[r].chosen, "ABCDEFGH")
                        .c_str());
    }
    return 0;
}

int run_decentralized_mode(const CliOptions& options, const fl::FlTask& task) {
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = options.rounds;
    config.seed = options.seed;
    config.payload_pad_bytes = options.pad;
    // Explicit specs win; otherwise the paper defaults from
    // paper_chain_config ("wait_all" + "best_combination") apply.
    if (!options.wait_policy.empty()) config.wait_policy = options.wait_policy;
    if (!options.agg.empty()) config.aggregation = options.agg;
    if (options.poison >= 0) {
        config.poisoned_peers = {static_cast<std::size_t>(options.poison)};
    }
    if (options.straggler >= 0) {
        config.stragglers = {static_cast<std::size_t>(options.straggler)};
        config.straggler_train_duration =
            net::seconds(options.straggler_train);
    }

    // Validate the specs up front so a typo is a clean CLI error instead of
    // a mid-deployment throw.
    try {
        std::printf("wait policy: %s (%s) | aggregation: %s (%s)\n\n",
                    core::make_wait_policy(config.wait_policy)->name().c_str(),
                    config.wait_policy.c_str(),
                    core::make_aggregation_strategy(config.aggregation)
                        ->name()
                        .c_str(),
                    config.aggregation.c_str());
    } catch (const Error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
    }
    const core::DecentralizedResult result =
        core::run_decentralized(task, config);

    for (std::size_t peer = 0; peer < result.peer_records.size(); ++peer) {
        std::printf("peer %c:\n", static_cast<char>('A' + peer));
        for (const core::PeerRoundRecord& record : result.peer_records[peer]) {
            std::printf("  r%zu t=%.0fs models=%zu", record.round,
                        net::to_seconds(record.aggregated_at),
                        record.models_available);
            if (record.stale_models_used > 0) {
                std::printf(" (%zu stale)", record.stale_models_used);
            }
            std::printf("%s chosen=%-6s acc=%.4f",
                        record.timed_out ? " (timeout)" : "",
                        record.chosen_label.c_str(), record.chosen_accuracy);
            if (!record.filtered_out.empty()) {
                std::printf("  filtered:");
                for (std::size_t c : record.filtered_out) {
                    std::printf(" %c", static_cast<char>('A' + c));
                }
            }
            std::printf("\n");
        }
    }
    std::printf(
        "chain height %llu, reorgs %llu, %.2f MB gossiped, "
        "mean round %.1fs (wait %.1fs)\n",
        static_cast<unsigned long long>(result.chain_height),
        static_cast<unsigned long long>(result.total_reorgs),
        static_cast<double>(result.traffic.bytes_sent) / 1e6,
        result.mean_round_seconds, result.mean_wait_seconds);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const CliOptions options = parse(argc, argv);

    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.dirichlet_alpha = options.alpha;
    data_config.train_per_client = options.train;
    data_config.test_per_client = options.train / 2 + 50;
    data_config.seed = options.seed;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = build_task(options, data);

    std::printf("bcfl: mode=%s model=%s rounds=%zu clients=%zu "
                "alpha=%.2f seed=%llu\n\n",
                options.mode.c_str(), task.model_name.c_str(), options.rounds,
                task.clients, options.alpha,
                static_cast<unsigned long long>(options.seed));

    if (options.mode == "vanilla") return run_vanilla_mode(options, task);
    return run_decentralized_mode(options, task);
}
