// bcfl_soak — sustained-load runner over either transport backend.
//
// Drives the same declarative ScenarioSpec (schema: docs/scenarios.md) that
// the grid engine runs, but through the transport seam: one deployment,
// base config only (the sweep is ignored), over the deterministic
// simulation or real loopback TCP sockets:
//
//   $ ./build/examples/bcfl_soak scenarios/soak_smoke.json
//   $ ./build/examples/bcfl_soak scenarios/ci_smoke.json --transport=sim
//
// Unlike bcfl_scenario, whose whole contract is byte-identical JSON, the
// soak runner's contract is *invariants under load*: it asserts the
// bounded-state guarantees (gossip seen-set ≤ 2 generations, tx pool
// pruned, nonce snapshots within the horizon) on every node after the run,
// that every peer completed at least --min-rounds rounds, and — with
// --require-consensus — that every peer's final model digest is identical.
// Any violated gate exits nonzero, which is what CI's soak-smoke job keys
// on.
//
// Flags:
//   --transport=sim|tcp   backend            [spec "transport", else sim]
//   --rounds=N            override spec rounds
//   --max-seconds=N       override the (sim or wall) time cap
//   --min-rounds=N        completion gate per peer          [1]
//   --require-consensus   gate on identical final digests
//   --out=PATH            also write a JSON report
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "core/parallel.hpp"
#include "core/paper_setup.hpp"
#include "core/scenario.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"

namespace {

using namespace bcfl;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <spec.json> [--transport=sim|tcp] [--rounds=N] "
                 "[--max-seconds=N] [--min-rounds=N] [--require-consensus] "
                 "[--out=PATH]\n",
                 argv0);
    return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

/// One gate: prints PASS/FAIL and accumulates the overall verdict.
struct Gates {
    bool ok = true;
    void check(bool condition, const std::string& what) {
        std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", what.c_str());
        if (!condition) ok = false;
    }
};

}  // namespace

int main(int argc, char** argv) {
    std::string spec_path;
    std::string out_path;
    std::string transport_flag;
    std::uint64_t rounds_override = 0;
    std::uint64_t max_seconds_override = 0;
    std::uint64_t min_rounds = 1;
    bool require_consensus = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--transport=", 12) == 0) {
            transport_flag = arg + 12;
            if (transport_flag != "sim" && transport_flag != "tcp") {
                std::fprintf(stderr, "invalid --transport: %s\n", arg + 12);
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
            if (!parse_u64(arg + 9, rounds_override)) return usage(argv[0]);
        } else if (std::strncmp(arg, "--max-seconds=", 14) == 0) {
            if (!parse_u64(arg + 14, max_seconds_override)) {
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--min-rounds=", 13) == 0) {
            if (!parse_u64(arg + 13, min_rounds)) return usage(argv[0]);
        } else if (std::strcmp(arg, "--require-consensus") == 0) {
            require_consensus = true;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            out_path = arg + 6;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg);
            return usage(argv[0]);
        } else if (spec_path.empty()) {
            spec_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (spec_path.empty()) return usage(argv[0]);

    try {
        core::ScenarioSpec spec = core::load_scenario_file(spec_path);
        const std::string backend =
            transport_flag.empty() ? spec.transport : transport_flag;
        core::DecentralizedConfig config = spec.base;
        if (rounds_override != 0) config.rounds = rounds_override;
        if (max_seconds_override != 0) {
            config.max_sim_time = net::seconds(max_seconds_override);
        }
        if (!spec.sweep.empty()) {
            std::printf("note: spec has a sweep grid (%zu axes) — the soak "
                        "runner uses the base config only\n",
                        spec.sweep.size());
        }

        std::printf("soak %s: transport=%s peers=%zu rounds=%zu policy=%s "
                    "aggregation=%s\n",
                    spec.name.c_str(), backend.c_str(), config.peers,
                    config.rounds, config.wait_policy.c_str(),
                    config.aggregation.c_str());

        ml::SyntheticCifarConfig data_config = spec.data;
        data_config.clients = config.peers;
        const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
        const fl::FlTask task =
            spec.model == "effnet"
                ? core::paper_effnet_task(data)
                : core::paper_simple_task(data, spec.model_hidden);

        core::DecentralizedResult result;
        if (backend == "tcp") {
            // Every peer trains inside its own dispatch thread; force the
            // compute engine serial so N concurrent rounds do not fan out
            // N * hardware_concurrency workers on one machine.
            core::parallel::ThreadCountOverride serial(1);
            net::TcpTransport transport;
            result = core::run_decentralized(task, config, transport);
        } else {
            result = core::run_decentralized(task, config);
        }

        // ------------------------------------------------------------ report
        std::printf("\nfinished at %.1f s (%s time), chain height %llu, "
                    "reorgs %llu\n",
                    net::to_seconds(result.finished_at),
                    backend == "tcp" ? "wall" : "sim",
                    static_cast<unsigned long long>(result.chain_height),
                    static_cast<unsigned long long>(result.total_reorgs));
        std::printf("traffic: sent=%llu delivered=%llu dropped=%llu "
                    "(invalid=%llu) bytes=%llu\n",
                    static_cast<unsigned long long>(
                        result.traffic.messages_sent),
                    static_cast<unsigned long long>(
                        result.traffic.messages_delivered),
                    static_cast<unsigned long long>(
                        result.traffic.messages_dropped),
                    static_cast<unsigned long long>(
                        result.traffic.dropped_invalid),
                    static_cast<unsigned long long>(
                        result.traffic.bytes_sent));
        std::printf("%6s %8s %11s %18s\n", "peer", "rounds", "final acc",
                    "final digest");
        for (std::size_t i = 0; i < result.peer_records.size(); ++i) {
            const auto& records = result.peer_records[i];
            const double accuracy =
                records.empty() ? 0.0 : records.back().chosen_accuracy;
            const std::string digest =
                i < result.final_model_digests.size()
                    ? result.final_model_digests[i].hex().substr(0, 16)
                    : "-";
            std::printf("%6zu %8zu %11.4f %18s\n", i, records.size(),
                        accuracy, digest.c_str());
        }

        // ------------------------------------------------------------- gates
        std::printf("\ngates:\n");
        Gates gates;
        for (std::size_t i = 0; i < result.peer_records.size(); ++i) {
            gates.check(result.peer_records[i].size() >= min_rounds,
                        "peer " + std::to_string(i) + " completed >= " +
                            std::to_string(min_rounds) + " round(s) (got " +
                            std::to_string(result.peer_records[i].size()) +
                            ")");
        }
        for (std::size_t i = 0; i < result.node_probes.size(); ++i) {
            const core::NodeStateProbe& probe = result.node_probes[i];
            const std::string node = "node " + std::to_string(i) + " ";
            // Two-generation scheme: the live set plus one frozen one.
            gates.check(
                probe.gossip_seen_size <= 2 * probe.gossip_seen_cap,
                node + "gossip seen-set " +
                    std::to_string(probe.gossip_seen_size) + " <= 2 x cap " +
                    std::to_string(probe.gossip_seen_cap));
            // Stale pruning bounds the pool by what is still pending; a
            // soak that leaks pooled txs blows far past this margin.
            gates.check(probe.pool_size <= probe.gossip_seen_cap,
                        node + "tx pool " + std::to_string(probe.pool_size) +
                            " bounded (<= " +
                            std::to_string(probe.gossip_seen_cap) + ")");
            // Horizon pruning keeps snapshots near the tip; side branches
            // can pin a handful past it, never a multiple of it.
            gates.check(
                probe.nonce_snapshots_held <=
                    probe.nonce_snapshot_horizon + probe.total_blocks -
                        probe.chain_height,
                node + "nonce snapshots " +
                    std::to_string(probe.nonce_snapshots_held) +
                    " within horizon " +
                    std::to_string(probe.nonce_snapshot_horizon));
        }
        if (require_consensus) {
            bool consensus = !result.final_model_digests.empty();
            for (const Hash32& digest : result.final_model_digests) {
                consensus =
                    consensus && digest == result.final_model_digests[0];
            }
            gates.check(consensus,
                        "all peers converged to one final model digest");
        }

        if (!out_path.empty()) {
            core::JsonValue peers = core::JsonValue::array();
            for (std::size_t i = 0; i < result.peer_records.size(); ++i) {
                const auto& records = result.peer_records[i];
                peers.push(
                    core::JsonValue::object()
                        .set("peer", static_cast<std::uint64_t>(i))
                        .set("rounds",
                             static_cast<std::uint64_t>(records.size()))
                        .set("final_accuracy",
                             records.empty()
                                 ? 0.0
                                 : records.back().chosen_accuracy)
                        .set("final_digest",
                             i < result.final_model_digests.size()
                                 ? result.final_model_digests[i].hex()
                                 : ""));
            }
            core::JsonValue doc =
                core::JsonValue::object()
                    .set("bench", "soak_" + spec.name)
                    .set("transport", backend)
                    .set("gates_passed", gates.ok)
                    .set("finished_at_s",
                         net::to_seconds(result.finished_at))
                    .set("chain_height", result.chain_height)
                    .set("messages_sent", result.traffic.messages_sent)
                    .set("messages_dropped",
                         result.traffic.messages_dropped)
                    .set("dropped_invalid", result.traffic.dropped_invalid)
                    .set("bytes_sent", result.traffic.bytes_sent)
                    .set("peers", std::move(peers));
            core::write_scenario_json(out_path, doc);
            std::printf("\n[soak json] wrote %s\n", out_path.c_str());
        }

        std::printf("\n%s\n", gates.ok ? "SOAK PASS" : "SOAK FAIL");
        return gates.ok ? 0 : 1;
    } catch (const Error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
