// Quickstart: stand up the paper's deployment — three fully-coupled peers
// (each trainer + miner + aggregator) on a simulated private Ethereum — and
// run two communication rounds of blockchain-based federated learning.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/paper_setup.hpp"

int main() {
    using namespace bcfl;

    // 1. A federated dataset: 10-class synthetic colour images, split across
    //    three clients (the CIFAR-10 stand-in; see DESIGN.md).
    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.train_per_client = 300;  // keep the quickstart snappy
    data_config.test_per_client = 200;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);

    // 2. A learning task: the paper's Simple NN trained from scratch.
    const fl::FlTask task = core::paper_simple_task(data);
    std::printf("model: %s, %zu clients, %zu-parameter updates\n",
                task.model_name.c_str(), task.clients,
                task.make_model()->weight_count());

    // 3. The decentralized deployment: PoW chain, registry contract, gossip.
    //    The round loop is policy-driven (core/policy.hpp): the paper's
    //    default is synchronous waiting + "consider" combination search.
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = 2;
    config.train_duration = net::seconds(20);
    std::printf("wait policy: %s | aggregation: %s\n",
                config.wait_policy.c_str(), config.aggregation.c_str());

    const core::DecentralizedResult result =
        core::run_decentralized(task, config);

    // 4. What happened: each peer's per-round combination table.
    for (std::size_t peer = 0; peer < result.peer_records.size(); ++peer) {
        std::printf("\npeer %c:\n", static_cast<char>('A' + peer));
        for (const core::PeerRoundRecord& record : result.peer_records[peer]) {
            std::printf("  round %zu: aggregated %zu models at t=%.1fs\n",
                        record.round, record.models_available,
                        net::to_seconds(record.aggregated_at));
            for (const core::ComboAccuracy& combo : record.combos) {
                std::printf("    combo %-6s -> accuracy %.4f%s\n",
                            combo.label.c_str(), combo.accuracy,
                            combo.label == record.chosen_label ? "  (chosen)"
                                                               : "");
            }
        }
    }
    std::printf("\nchain height %llu, %.2f MB gossiped, finished at t=%.1fs\n",
                static_cast<unsigned long long>(result.chain_height),
                static_cast<double>(result.traffic.bytes_sent) / 1e6,
                net::to_seconds(result.finished_at));
    return 0;
}
