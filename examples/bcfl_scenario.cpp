// bcfl_scenario — declarative scenario runner.
//
// Executes a JSON ScenarioSpec (schema: docs/scenarios.md), fanning the
// sweep grid out through the deterministic compute engine, and writes one
// BENCH-schema JSON document per run:
//
//   $ ./build/examples/bcfl_scenario scenarios/paper_tradeoff.json
//   $ ./build/examples/bcfl_scenario scenarios/churn.json --list
//   $ ./build/examples/bcfl_scenario spec.json --out=/tmp/result.json
//
// Flags:
//   --list        expand and print the sweep grid without running it
//   --out=PATH    output path        [BENCH_scenario_<name>.json in CWD]
//   --threads=N   grid fan-out width [spec "threads", else BCFL_THREADS /
//                 hardware default]
//
// Output is a pure function of (spec, seed): the same spec produces
// byte-identical JSON at any thread setting, which is what lets CI diff it
// against bench/baselines/.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "core/scenario.hpp"

namespace {

using namespace bcfl;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <spec.json> [--list] [--out=PATH] "
                 "[--threads=N]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string spec_path;
    std::string out_path;
    bool list_only = false;
    std::size_t threads_flag = 0;
    bool threads_set = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            list_only = true;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            out_path = arg + 6;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            char* end = nullptr;
            threads_flag = std::strtoull(arg + 10, &end, 10);
            if (end == arg + 10 || *end != '\0') {
                std::fprintf(stderr, "invalid --threads value: %s\n",
                             arg + 10);
                return usage(argv[0]);
            }
            threads_set = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg);
            return usage(argv[0]);
        } else if (spec_path.empty()) {
            spec_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (spec_path.empty()) return usage(argv[0]);

    try {
        core::ScenarioSpec spec = core::load_scenario_file(spec_path);
        if (threads_set) spec.threads = threads_flag;
        const auto points = core::expand_grid(spec);

        std::printf("scenario %s: model=%s peers=%zu rounds=%zu seed=%llu "
                    "grid=%zu point%s\n",
                    spec.name.c_str(), spec.model.c_str(), spec.base.peers,
                    spec.base.rounds,
                    static_cast<unsigned long long>(spec.base.seed),
                    points.size(), points.size() == 1 ? "" : "s");
        if (list_only) {
            for (std::size_t i = 0; i < points.size(); ++i) {
                std::printf("  [%2zu] %s\n", i, points[i].label.c_str());
            }
            return 0;
        }

        const core::JsonValue doc = core::run_scenario(spec);

        // One table row per point, from the document itself, so what is
        // printed is exactly what lands in the JSON.
        std::printf("%-44s %10s %10s %8s %9s %9s %8s\n", "point",
                    "round (s)", "wait (s)", "models", "final acc",
                    "dropped", "reorgs");
        for (const core::JsonValue& point :
             doc.find("points")->items("points")) {
            std::printf(
                "%-44s %10.1f %10.1f %8.2f %9.4f %9llu %8llu\n",
                point.find("label")->as_string("label").c_str(),
                point.find("mean_round_s")->as_double("mean_round_s"),
                point.find("mean_wait_s")->as_double("mean_wait_s"),
                point.find("mean_models_used")
                    ->as_double("mean_models_used"),
                point.find("final_accuracy")->as_double("final_accuracy"),
                static_cast<unsigned long long>(
                    point.find("messages_dropped")
                        ->as_u64("messages_dropped")),
                static_cast<unsigned long long>(
                    point.find("reorgs")->as_u64("reorgs")));
        }

        if (out_path.empty()) {
            out_path = "BENCH_scenario_" + spec.name + ".json";
        }
        core::write_scenario_json(out_path, doc);
        std::printf("\n[scenario json] wrote %s\n", out_path.c_str());
        return 0;
    } catch (const Error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }
}
