// Scenario: the title question — wait, or not to wait? A compact version of
// the E4 sweep: synchronous (K=3) vs fully asynchronous (K=1) aggregation on
// the same task, reporting the speed/precision trade.
//
//   $ ./build/examples/async_tradeoff
#include <cstdio>

#include "core/paper_setup.hpp"

int main() {
    using namespace bcfl;

    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.train_per_client = 300;
    data_config.test_per_client = 200;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = core::paper_simple_task(data);

    // Each mode is a WaitPolicy factory spec (see core/policy.hpp and
    // docs/policies.md) — the deployment code never changes.
    const struct {
        const char* label;
        const char* wait_spec;
    } modes[] = {
        {"wait for all (sync)", "wait_all,timeout=600s"},
        {"wait for none (async)", "wait_for=1"},
        {"adaptive deadline", "adaptive,base=30s,extend=30s,max=300s"},
    };
    std::printf("%-22s %38s %11s %11s %16s\n", "policy", "spec", "round (s)",
                "wait (s)", "final accuracy");
    for (const auto& mode : modes) {
        core::DecentralizedConfig config = core::paper_chain_config();
        config.rounds = 3;
        config.train_duration = net::seconds(20);
        config.wait_policy = mode.wait_spec;
        const auto result = core::run_decentralized(task, config);
        double accuracy = 0.0;
        for (const auto& records : result.peer_records) {
            accuracy += records.back().chosen_accuracy;
        }
        accuracy /= static_cast<double>(result.peer_records.size());
        std::printf("%-22s %38s %11.1f %11.1f %16.4f\n", mode.label,
                    mode.wait_spec, result.mean_round_seconds,
                    result.mean_wait_seconds, accuracy);
    }
    std::printf("\nthe paper's conclusion: for simple models the async loss "
                "is small;\ncomplex models need more peers' models in the "
                "aggregate (see bench/wait_or_not_tradeoff).\n");
    return 0;
}
