// Scenario: the title question — wait, or not to wait? A compact version of
// the E4 sweep: synchronous (K=3) vs fully asynchronous (K=1) aggregation on
// the same task, reporting the speed/precision trade.
//
//   $ ./build/examples/async_tradeoff
#include <cstdio>

#include "core/paper_setup.hpp"

int main() {
    using namespace bcfl;

    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.train_per_client = 300;
    data_config.test_per_client = 200;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = core::paper_simple_task(data);

    std::printf("%-22s %14s %14s %16s\n", "policy", "round (s)", "wait (s)",
                "final accuracy");
    for (std::size_t k : {3u, 1u}) {
        core::DecentralizedConfig config = core::paper_chain_config();
        config.rounds = 3;
        config.train_duration = net::seconds(20);
        config.wait_for_models = k;
        const auto result = core::run_decentralized(task, config);
        double accuracy = 0.0;
        for (const auto& records : result.peer_records) {
            accuracy += records.back().chosen_accuracy;
        }
        accuracy /= static_cast<double>(result.peer_records.size());
        std::printf("%-22s %14.1f %14.1f %16.4f\n",
                    k == 3 ? "wait for all (sync)" : "wait for none (async)",
                    result.mean_round_seconds, result.mean_wait_seconds,
                    accuracy);
    }
    std::printf("\nthe paper's conclusion: for simple models the async loss "
                "is small;\ncomplex models need more peers' models in the "
                "aggregate (see bench/wait_or_not_tradeoff).\n");
    return 0;
}
