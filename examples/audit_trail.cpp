// Scenario: non-repudiation (the paper's Case 3). A peer publishes a model;
// any other participant later proves — from chain data alone — that the
// publisher cannot deny authorship. Tampering with any part of the evidence
// (payload, headers, PoW) is detected.
//
//   $ ./build/examples/audit_trail
#include <cstdio>

#include "core/audit.hpp"
#include "core/paper_setup.hpp"
#include "ml/serialize.hpp"
#include "net/sim_transport.hpp"
#include "vm/registry_contract.hpp"

int main() {
    using namespace bcfl;
    namespace abi = vm::registry_abi;

    // One miner, one publisher account.
    net::SimTransport transport(net::LinkParams{}, 11);
    node::NodeConfig config;
    config.key_seed = 42;
    config.hash_rate = 400.0;
    config.chain.initial_difficulty = 400;
    config.chain.min_difficulty = 64;
    config.chain.target_interval_ms = 2000;
    node::Node node(transport, config);
    node.start();

    // Publish a (toy) model for round 3.
    const std::vector<float> weights(500, 0.125f);
    const Bytes payload = ml::serialize_weights(weights);
    const Hash32 digest = ml::weights_digest(BytesView(payload));
    std::uint64_t nonce = 0;
    node.submit_tx(chain::Transaction::make_signed(
        node.key(), nonce++, vm::registry_address(), 5'000'000, 1,
        abi::publish_calldata(3, digest, 1, payload.size())));
    node.submit_tx(chain::Transaction::make_signed(
        node.key(), nonce++, vm::registry_address(), 5'000'000, 1,
        abi::chunk_calldata(3, 0, payload)));
    transport.sim().run_until(net::seconds(60));

    std::printf("chain height: %llu\n",
                static_cast<unsigned long long>(node.chain().height()));

    // Build the audit proof from chain data.
    const auto proof = core::build_audit_proof(node.chain(), 3, node.address());
    if (!proof.has_value()) {
        std::printf("no publish transaction found — unexpected\n");
        return 1;
    }
    std::printf("proof: publish tx %s\n       in block #%llu, %zu headers to "
                "head, model hash %s\n",
                proof->publish_tx.hash().hex().substr(0, 16).c_str(),
                static_cast<unsigned long long>(
                    proof->header_chain.front().number),
                proof->header_chain.size(),
                proof->model_hash.hex().substr(0, 16).c_str());

    const auto verdict = core::verify_audit_proof(*proof, node.address());
    std::printf("\nhonest proof verifies:\n"
                "  signature %d, calldata %d, inclusion %d, headers %d, pow %d"
                " -> %s\n",
                verdict.signature_valid, verdict.calldata_matches,
                verdict.inclusion_valid, verdict.headers_linked,
                verdict.pow_valid, verdict.all_valid() ? "VALID" : "INVALID");

    // The publisher tries to repudiate by claiming a different account sent
    // it; an auditor tries to forge evidence. Both fail.
    const Address impostor = crypto::KeyPair::from_seed(1234).address();
    std::printf("claimed by impostor          -> %s\n",
                core::verify_audit_proof(*proof, impostor).all_valid()
                    ? "VALID (bug!)"
                    : "REJECTED");

    auto tampered = *proof;
    tampered.publish_tx.data[8] ^= 0x40;  // alter the announced round
    std::printf("tampered publish calldata    -> %s\n",
                core::verify_audit_proof(tampered, node.address()).all_valid()
                    ? "VALID (bug!)"
                    : "REJECTED");

    auto forged = *proof;
    forged.header_chain.front().pow_nonce += 1;
    std::printf("forged header (stale PoW)    -> %s\n",
                core::verify_audit_proof(forged, node.address()).all_valid()
                    ? "VALID (bug!)"
                    : "REJECTED");
    return 0;
}
