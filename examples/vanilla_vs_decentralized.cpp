// Scenario: the paper's central comparison — does decentralizing FL onto a
// blockchain cost accuracy? Runs the same task through (a) centralized
// Vanilla FL with both aggregation policies and (b) the blockchain-based
// deployment, then compares final accuracies.
//
//   $ ./build/examples/vanilla_vs_decentralized
#include <cstdio>

#include "core/paper_setup.hpp"
#include "fl/vanilla.hpp"

int main() {
    using namespace bcfl;

    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.train_per_client = 400;
    data_config.test_per_client = 300;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = core::paper_simple_task(data);
    constexpr std::size_t kRounds = 5;

    // (a) Centralized Vanilla FL.
    fl::VanillaConfig vanilla_config;
    vanilla_config.rounds = kRounds;
    vanilla_config.mode = fl::AggregationMode::not_consider;
    const fl::VanillaResult vanilla = run_vanilla(task, vanilla_config);

    vanilla_config.mode = fl::AggregationMode::consider;
    const fl::VanillaResult considered = run_vanilla(task, vanilla_config);

    // (b) Blockchain-based FL (fully coupled peers). paper_chain_config
    // selects the paper's policies through the factory: "wait_all" +
    // "best_combination" (see core/policy.hpp).
    core::DecentralizedConfig chain_config = core::paper_chain_config();
    chain_config.rounds = kRounds;
    chain_config.train_duration = net::seconds(20);
    const core::DecentralizedResult decentralized =
        core::run_decentralized(task, chain_config);

    const auto mean = [](const std::vector<double>& v) {
        double acc = 0.0;
        for (double x : v) acc += x;
        return acc / static_cast<double>(v.size());
    };

    std::printf("final accuracy after %zu rounds (%s):\n", kRounds,
                task.model_name.c_str());
    std::printf("  vanilla FL, not consider : %.4f\n",
                mean(vanilla.rounds.back().client_accuracy));
    std::printf("  vanilla FL, consider     : %.4f\n",
                mean(considered.rounds.back().client_accuracy));
    double decentralized_acc = 0.0;
    for (const auto& records : decentralized.peer_records) {
        decentralized_acc += records.back().chosen_accuracy;
    }
    decentralized_acc /= static_cast<double>(decentralized.peer_records.size());
    std::printf("  blockchain-based FL      : %.4f\n", decentralized_acc);
    std::printf("\npaper's finding: the three settings land in the same "
                "accuracy band —\ndecentralization via blockchain does not "
                "cost model quality.\n");
    return 0;
}
