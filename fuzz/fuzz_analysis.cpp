// Fuzz target: vm::analyze — the static gate untrusted contract bytecode
// passes before the chain installs and executes it.
//
// Contracts under test:
//   * totality: analyze never throws or crashes on ANY byte string and
//     always returns a verdict (no try block — any escape aborts);
//   * stability: analyzing the same bytes twice yields an identical
//     serialized block table (block_table_dump), and the annotated
//     disassembly of code + analysis is total;
//   * the differential invariant the executor gate relies on: a program
//     the analyzer ACCEPTS never traps on stack underflow, stack
//     overflow, an invalid jump destination or a truncated PUSH when the
//     interpreter runs it — for any calldata. Runtime out-of-gas and
//     memory-limit aborts are fine (those are dynamic); the structural
//     trap classes must be impossible in accepted code.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/keccak.hpp"
#include "vm/analysis.hpp"
#include "vm/assembler.hpp"
#include "vm/disasm.hpp"
#include "vm/evm.hpp"
#include "vm/state.hpp"

namespace {

bool starts_with(const std::string& text, std::string_view prefix) {
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

/// Runtime errors that analyzer-accepted code must never produce. The
/// strings match the Abort reasons in vm/evm.cpp exactly; "size/offset out
/// of range: jump dest" is the interpreter's bound check on the popped jump
/// target, i.e. another spelling of invalid-jump.
bool forbidden_for_accepted(const std::string& error) {
    return error == "stack underflow" || error == "stack overflow" ||
           error == "invalid jump destination" ||
           error == "push extends past end of code" ||
           error == "size/offset out of range: jump dest" ||
           starts_with(error, "invalid opcode");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const bcfl::BytesView code{data, size};

    // Totality + stability: no try block around any of this.
    const bcfl::vm::CodeAnalysis analysis = bcfl::vm::analyze(code);
    const bcfl::Bytes table = bcfl::vm::block_table_dump(analysis);
    const bcfl::vm::CodeAnalysis again = bcfl::vm::analyze(code);
    if (table != bcfl::vm::block_table_dump(again) ||
        analysis.valid() != again.valid()) {
        std::fprintf(stderr, "analysis: unstable result across re-runs\n");
        std::abort();
    }
    (void)bcfl::vm::disassemble_annotated(code, analysis);

    // Interpretation 2: assembler source. Output of a successful assembly
    // must itself analyze without crashing (diagnostics included).
    const std::string_view source{reinterpret_cast<const char*>(data), size};
    try {
        std::vector<bcfl::vm::AsmDiagnostic> diagnostics;
        const bcfl::Bytes assembled = bcfl::vm::assemble(source, &diagnostics);
        (void)bcfl::vm::analyze(assembled);
    } catch (const bcfl::Error&) {
        // Typed rejection is the contract for malformed source.
    }

    // Differential invariant, for accepted programs only.
    if (size == 0 || !analysis.valid()) return 0;

    bcfl::vm::WorldState state;
    bcfl::Address contract;
    contract.data[19] = 0x01;
    state.deploy(contract, bcfl::Bytes(data, data + size));

    // Deterministic "random" calldata derived from the input itself.
    const bcfl::Hash32 seed = bcfl::crypto::keccak256(code);
    bcfl::Bytes calldata;
    const std::size_t calldata_len = data[0] % 97;
    while (calldata.size() < calldata_len) {
        calldata.push_back(seed.data[calldata.size() % seed.data.size()]);
    }

    const bcfl::vm::Vm vm;
    bcfl::vm::CallContext ctx;
    ctx.contract = contract;
    ctx.caller.data[19] = 0x99;
    ctx.calldata = calldata;
    ctx.gas_limit = 100'000;  // bounded: loops die on gas, which is fine
    ctx.block_number = 1;
    ctx.timestamp_ms = 1'000;
    const bcfl::vm::CallResult result = vm.call(state, ctx);
    if (!result.success && forbidden_for_accepted(result.error)) {
        std::fprintf(stderr,
                     "analysis accepted code that trapped at runtime: %s\n",
                     result.error.c_str());
        std::abort();
    }
    return 0;
}
