// Fuzz target: core::JsonValue::parse and core::parse_scenario — the
// scenario specs operators feed the runner, the least-trusted text
// surface in the repo.
//
// Contracts under test:
//   * malformed input throws bcfl::Error, never anything else, never UB;
//   * for accepted documents, dump() is a fixed point: parsing the dump
//     and dumping again yields the same bytes (the property every
//     BENCH_*.json byte-comparison gate rests on);
//   * parse_scenario either yields a validated spec or throws typed.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "core/scenario.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string_view text{reinterpret_cast<const char*>(data), size};
    try {
        const bcfl::core::JsonValue value = bcfl::core::JsonValue::parse(text);
        const std::string once = value.dump();
        const std::string twice = bcfl::core::JsonValue::parse(once).dump();
        if (once != twice) {
            std::fprintf(stderr, "json: dump is not a parse fixed point\n");
            std::abort();
        }
    } catch (const bcfl::Error&) {
        // Typed rejection is the contract for malformed input.
    }
    try {
        (void)bcfl::core::parse_scenario(text);
    } catch (const bcfl::Error&) {
        // Ditto for full spec validation.
    }
    return 0;
}
