// Fuzz target: ml::deserialize_weights — the model-update payload a peer
// decodes straight off the chain, exactly the surface the BCFL threat
// models flag for malicious updates.
//
// Contracts under test:
//   * malformed input throws bcfl::DecodeError (a bcfl::Error), never
//     anything else — in particular a forged parameter count must hit
//     the cap, not std::length_error/OOM;
//   * the format is canonical: a blob that decodes re-serializes to the
//     exact input bytes (header, payload and digest).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "ml/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const bcfl::BytesView input{data, size};
    try {
        const std::vector<float> weights = bcfl::ml::deserialize_weights(input);
        const bcfl::Bytes round_trip = bcfl::ml::serialize_weights(weights);
        if (!(round_trip.size() == size &&
              bcfl::bytes_equal(round_trip, input))) {
            std::fprintf(stderr,
                         "model: decode accepted non-canonical blob "
                         "(%zu bytes re-encoded to %zu)\n",
                         size, round_trip.size());
            std::abort();
        }
        (void)bcfl::ml::weights_digest(input);
    } catch (const bcfl::Error&) {
        // Typed rejection is the contract for malformed input.
    }
    return 0;
}
