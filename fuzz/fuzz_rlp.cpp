// Fuzz target: rlp::decode — the wire format every transaction and block
// header crosses before hashing/signing.
//
// Contracts under test:
//   * malformed input throws bcfl::DecodeError (a bcfl::Error), never
//     anything else, never UB, never unbounded recursion (depth cap);
//   * the decoder only accepts canonical RLP, so a successful decode must
//     re-encode to the exact input bytes.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "rlp/rlp.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const bcfl::BytesView input{data, size};
    try {
        const bcfl::rlp::Item item = bcfl::rlp::decode(input);
        const bcfl::Bytes round_trip = bcfl::rlp::encode(item);
        if (!(round_trip.size() == size &&
              bcfl::bytes_equal(round_trip, input))) {
            std::fprintf(stderr,
                         "rlp: decode accepted non-canonical input "
                         "(%zu bytes re-encoded to %zu)\n",
                         size, round_trip.size());
            std::abort();
        }
    } catch (const bcfl::Error&) {
        // Typed rejection is the contract for malformed input.
    }
    return 0;
}
