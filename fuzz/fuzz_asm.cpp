// Fuzz target: vm::assemble and vm::disassemble — contract text and
// bytecode are operator/peer input once coordination moves on chain.
//
// Contracts under test:
//   * assemble throws bcfl::Error on bad source (token cap, immediate
//     overflow, unknown mnemonics), never anything else, never UB;
//   * disassemble never throws on ANY byte string — it is the tool
//     operators point at untrusted chain bytecode first;
//   * assembler output always disassembles (every emitted byte is
//     printable as an opcode or flagged INVALID/truncated).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "vm/assembler.hpp"
#include "vm/disasm.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    // Interpretation 1: the input is assembler source text.
    const std::string_view source{reinterpret_cast<const char*>(data), size};
    try {
        const bcfl::Bytes code = bcfl::vm::assemble(source);
        const std::string listing = bcfl::vm::disassemble(code);
        if (!code.empty() && listing.empty()) {
            std::fprintf(stderr, "asm: non-empty code, empty listing\n");
            std::abort();
        }
    } catch (const bcfl::Error&) {
        // Typed rejection is the contract for malformed source.
    }
    // Interpretation 2: the input is raw bytecode. Disassembly is total —
    // no try block, any escape aborts the process.
    (void)bcfl::vm::disassemble(bcfl::BytesView{data, size});
    return 0;
}
