// Standalone driver for the fuzz harnesses when the toolchain lacks
// libFuzzer (-fsanitize=fuzzer): replays each file argument through
// LLVMFuzzerTestOneInput, so the checked-in corpus doubles as a
// regression suite under plain gcc + ASan. With no arguments it reads
// one input from stdin.
//
// This mirrors the contract libFuzzer's own main provides: the harness
// cannot tell which driver is running it.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_stream(std::FILE* stream) {
    std::vector<std::uint8_t> data;
    std::uint8_t buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), stream)) > 0) {
        data.insert(data.end(), buffer, buffer + n);
    }
    return data;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        const std::vector<std::uint8_t> data = read_stream(stdin);
        LLVMFuzzerTestOneInput(data.data(), data.size());
        std::printf("1 input from stdin: OK\n");
        return 0;
    }
    int replayed = 0;
    for (int i = 1; i < argc; ++i) {
        // Skip libFuzzer-style flags so the same command line works for
        // both drivers (e.g. `-max_total_time=60 corpus/`).
        if (argv[i][0] == '-') continue;
        std::FILE* file = std::fopen(argv[i], "rb");
        if (file == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", argv[i]);
            return 2;
        }
        const std::vector<std::uint8_t> data = read_stream(file);
        std::fclose(file);
        LLVMFuzzerTestOneInput(data.data(), data.size());
        ++replayed;
    }
    std::printf("%d corpus input(s): OK\n", replayed);
    return 0;
}
