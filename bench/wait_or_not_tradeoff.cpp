// E4 — the paper's headline question: "Should we prioritize waiting for all
// models for aggregation, or accept a slight reduction in accuracy to
// expedite the process asynchronously?"
//
// Sweep: wait-for-K aggregation (K = 1, 2, 3) for both model families, with
// the chain carrying payloads at the *paper-reported* byte sizes (Simple NN
// 248 KB, EfficientNet-B0 21.2 MB — ballast pads our miniature weights up to
// the deployment scale; see DESIGN.md §3.4).
//
// Expected shape (paper conclusion): asynchronous aggregation cuts the round
// time substantially; for the simple model the accuracy cost is negligible
// (<~1 point), for the complex model waiting for all models buys visibly
// more accuracy (self/partial combos trail the full aggregation).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"

namespace {

using namespace bcfl;

struct SweepRow {
    std::size_t wait_k;
    double mean_round_s;
    double mean_wait_s;
    double mean_models_used;
    double final_accuracy;  // mean chosen accuracy, last round, over peers
};

SweepRow run_point(const fl::FlTask& task, std::size_t wait_k,
                   std::size_t payload_bytes, std::size_t rounds) {
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = rounds;
    config.wait_for_models = wait_k;
    config.wait_timeout = net::seconds(600);
    config.chunk_bytes = 512 * 1024;
    // Ballast on top of the real serialized weights, up to the paper size.
    const std::size_t real_bytes = 13 + 4 * 42'538 + 32;  // upper bound
    config.payload_pad_bytes =
        payload_bytes > real_bytes ? payload_bytes - real_bytes : 0;
    const core::DecentralizedResult result =
        core::run_decentralized(task, config);

    SweepRow row;
    row.wait_k = wait_k;
    row.mean_round_s = result.mean_round_seconds;
    row.mean_wait_s = result.mean_wait_seconds;
    double models = 0.0;
    double accuracy = 0.0;
    std::size_t samples = 0;
    for (const auto& records : result.peer_records) {
        for (const auto& record : records) {
            models += static_cast<double>(record.models_available);
            ++samples;
        }
        if (!records.empty()) accuracy += records.back().chosen_accuracy;
    }
    row.mean_models_used =
        samples ? models / static_cast<double>(samples) : 0.0;
    row.final_accuracy =
        accuracy / static_cast<double>(result.peer_records.size());
    return row;
}

void run_sweep(const std::string& name, const fl::FlTask& task,
               std::size_t payload_bytes, std::size_t rounds) {
    bench::print_title(
        "E4 — wait-for-K sweep, " + name + " (payload on chain: " +
        std::to_string(payload_bytes / 1024) + " KB per model)");
    std::printf("%8s %16s %16s %14s %16s %18s\n", "K", "round time (s)",
                "wait time (s)", "models used", "final accuracy",
                "acc vs sync");
    double sync_accuracy = 0.0;
    std::vector<SweepRow> rows;
    for (std::size_t k : {3u, 2u, 1u}) {
        rows.push_back(run_point(task, k, payload_bytes, rounds));
        if (k == 3) sync_accuracy = rows.back().final_accuracy;
    }
    for (const SweepRow& row : rows) {
        std::printf("%8zu %16.1f %16.1f %14.2f %16.4f %+17.4f\n", row.wait_k,
                    row.mean_round_s, row.mean_wait_s, row.mean_models_used,
                    row.final_accuracy, row.final_accuracy - sync_accuracy);
    }
}

void BM_Tradeoff_SimpleNN(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        run_sweep("Simple NN", task, core::kPaperSimpleModelBytes, 6);
    }
}

void BM_Tradeoff_EffNetB0(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_effnet_task(data);
    for (auto _ : state) {
        run_sweep("Efficient-B0 (21.2 MB on chain)", task,
                  core::kPaperEffnetModelBytes, 4);
    }
}

}  // namespace

BENCHMARK(BM_Tradeoff_SimpleNN)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_Tradeoff_EffNetB0)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
