// E4 — the paper's headline question: "Should we prioritize waiting for all
// models for aggregation, or accept a slight reduction in accuracy to
// expedite the process asynchronously?"
//
// Sweep: wait-for-K aggregation (K = 1, 2, 3) for both model families, with
// the chain carrying payloads at the *paper-reported* byte sizes (Simple NN
// 248 KB, EfficientNet-B0 21.2 MB — ballast pads our miniature weights up to
// the deployment scale; see DESIGN.md §3.4). Wait policies are selected
// through the core/policy.hpp factory; on top of the paper's K sweep we run
// the §V "middle ground" AdaptiveDeadline policy, which extends its deadline
// while models are still arriving.
//
// Expected shape (paper conclusion): asynchronous aggregation cuts the round
// time substantially; for the simple model the accuracy cost is negligible
// (<~1 point), for the complex model waiting for all models buys visibly
// more accuracy (self/partial combos trail the full aggregation).
//
// Results are also emitted as BENCH_wait_or_not_tradeoff.json so the
// speed/precision trajectory can be tracked across PRs.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"
#include "core/policy.hpp"

namespace {

using namespace bcfl;

struct SweepRow {
    std::string label;      // table label, e.g. "K=3" or "adaptive"
    std::string wait_spec;  // the policy spec the factory received
    double mean_round_s = 0.0;
    double mean_wait_s = 0.0;
    double mean_models_used = 0.0;
    double final_accuracy = 0.0;  // mean chosen accuracy, last round
};

SweepRow run_point(const fl::FlTask& task, const std::string& label,
                   const std::string& wait_spec, std::size_t payload_bytes,
                   std::size_t rounds) {
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = rounds;
    config.wait_policy = wait_spec;
    config.chunk_bytes = 512 * 1024;
    // Ballast on top of the real serialized weights, up to the paper size.
    const std::size_t real_bytes = 13 + 4 * 42'538 + 32;  // upper bound
    config.payload_pad_bytes =
        payload_bytes > real_bytes ? payload_bytes - real_bytes : 0;
    const core::DecentralizedResult result =
        core::run_decentralized(task, config);

    SweepRow row;
    row.label = label;
    row.wait_spec = wait_spec;
    row.mean_round_s = result.mean_round_seconds;
    row.mean_wait_s = result.mean_wait_seconds;
    double models = 0.0;
    double accuracy = 0.0;
    std::size_t samples = 0;
    for (const auto& records : result.peer_records) {
        for (const auto& record : records) {
            models += static_cast<double>(record.models_available);
            ++samples;
        }
        if (!records.empty()) accuracy += records.back().chosen_accuracy;
    }
    row.mean_models_used =
        samples ? models / static_cast<double>(samples) : 0.0;
    row.final_accuracy =
        accuracy / static_cast<double>(result.peer_records.size());
    return row;
}

std::vector<SweepRow> run_sweep(const std::string& name,
                                const fl::FlTask& task,
                                std::size_t payload_bytes,
                                std::size_t rounds) {
    bench::print_title(
        "E4 — wait-policy sweep, " + name + " (payload on chain: " +
        std::to_string(payload_bytes / 1024) + " KB per model)");
    std::printf("%10s %32s %14s %14s %13s %15s %12s\n", "policy",
                "spec", "round (s)", "wait (s)", "models used",
                "final accuracy", "acc vs sync");
    std::vector<SweepRow> rows;
    // The paper's K sweep, expressed through the policy factory...
    for (std::size_t k : {3u, 2u, 1u}) {
        rows.push_back(run_point(task, "K=" + std::to_string(k),
                                 "wait_for=" + std::to_string(k) +
                                     ",timeout=600s",
                                 payload_bytes, rounds));
    }
    // ...plus the §V middle ground the API makes a one-liner.
    rows.push_back(run_point(task, "adaptive",
                             "adaptive,base=60s,extend=45s,max=600s",
                             payload_bytes, rounds));
    const double sync_accuracy = rows.front().final_accuracy;
    for (const SweepRow& row : rows) {
        std::printf("%10s %32s %14.1f %14.1f %13.2f %15.4f %+11.4f\n",
                    row.label.c_str(), row.wait_spec.c_str(),
                    row.mean_round_s, row.mean_wait_s, row.mean_models_used,
                    row.final_accuracy, row.final_accuracy - sync_accuracy);
    }
    return rows;
}

bench::Json sweep_json(const std::string& model, std::size_t payload_bytes,
                       std::size_t rounds,
                       const std::vector<SweepRow>& rows) {
    bench::Json points = bench::Json::array();
    for (const SweepRow& row : rows) {
        points.push(bench::Json::object()
                        .set("policy", row.label)
                        .set("wait_spec", row.wait_spec)
                        .set("mean_round_s", row.mean_round_s)
                        .set("mean_wait_s", row.mean_wait_s)
                        .set("mean_models_used", row.mean_models_used)
                        .set("final_accuracy", row.final_accuracy));
    }
    return bench::Json::object()
        .set("model", model)
        .set("payload_bytes", payload_bytes)
        .set("rounds", rounds)
        .set("points", std::move(points));
}

bench::Json g_results = bench::Json::array();

void BM_Tradeoff_SimpleNN(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        const auto rows =
            run_sweep("Simple NN", task, core::kPaperSimpleModelBytes, 6);
        g_results.push(
            sweep_json("simple_nn", core::kPaperSimpleModelBytes, 6, rows));
    }
}

void BM_Tradeoff_EffNetB0(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_effnet_task(data);
    for (auto _ : state) {
        const auto rows = run_sweep("Efficient-B0 (21.2 MB on chain)", task,
                                    core::kPaperEffnetModelBytes, 4);
        g_results.push(
            sweep_json("effnet_b0", core::kPaperEffnetModelBytes, 4, rows));
    }
}

}  // namespace

BENCHMARK(BM_Tradeoff_SimpleNN)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_Tradeoff_EffNetB0)->Unit(benchmark::kSecond)->Iterations(1);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::write_bench_json(
        "wait_or_not_tradeoff",
        bench::Json::object()
            .set("bench", "wait_or_not_tradeoff")
            .set("sweeps", std::move(g_results)));
    return 0;
}
