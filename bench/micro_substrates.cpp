// E6 — substrate microbenchmarks (auto-timed google-benchmark): an honesty
// check on the costs underlying the simulated deployment, and a performance
// regression harness for the hand-written crypto/VM/ML kernels. Also emits
// BENCH_micro_substrates.json: the serial-vs-parallel comparison of the
// aggregation hot path (BestCombination round evaluation on five
// contributors, FedAvg reduction) with a fitness fingerprint CI diffs
// across BCFL_THREADS settings.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chain/pow.hpp"
#include "chain/types.hpp"
#include "common/rng.hpp"
#include "core/parallel.hpp"
#include "core/policy.hpp"
#include "crypto/keccak.hpp"
#include "crypto/merkle.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "fl/fedavg.hpp"
#include "fl/task.hpp"
#include "ml/data.hpp"
#include "ml/layers.hpp"
#include "ml/models.hpp"
#include "rlp/rlp.hpp"
#include "vm/analysis.hpp"
#include "vm/evm.hpp"
#include "vm/registry_contract.hpp"

namespace {

using namespace bcfl;

void BM_Keccak256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::keccak256(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(1);
    const Bytes message = str_bytes("round 3 model update");
    for (auto _ : state) {
        benchmark::DoNotOptimize(key.sign(message));
    }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(1);
    const Bytes message = str_bytes("round 3 model update");
    const auto sig = key.sign(message);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::verify(key.public_key(), message, sig));
    }
}
BENCHMARK(BM_SchnorrVerify);

void BM_MerkleRoot(benchmark::State& state) {
    std::vector<Hash32> leaves;
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
        leaves.push_back(crypto::keccak256(be_bytes(i)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::merkle_root(leaves));
    }
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_RlpTransactionRoundTrip(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(3);
    const auto tx = chain::Transaction::make_signed(
        key, 7, Address{}, 100'000, 2, Bytes(1024, 0x7e));
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::Transaction::decode(tx.encode()));
    }
}
BENCHMARK(BM_RlpTransactionRoundTrip);

void BM_PowHashRate(benchmark::State& state) {
    chain::BlockHeader header;
    header.number = 1;
    header.difficulty = 0xffffffffffffffffull;  // never succeeds: pure rate
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::mine_seal(header, nonce, 100));
        nonce += 100;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_PowHashRate);

void BM_RegistryPublishCall(benchmark::State& state) {
    vm::WorldState base;
    base.deploy(vm::registry_address(), vm::registry_bytecode());
    vm::Vm evm;
    const Bytes calldata = vm::registry_abi::publish_calldata(
        1, crypto::keccak256(str_bytes("m")), 4, 1024);
    for (auto _ : state) {
        vm::WorldState state_copy = base;
        vm::CallContext ctx;
        ctx.contract = vm::registry_address();
        ctx.caller = crypto::KeyPair::from_seed(1).address();
        ctx.calldata = calldata;
        ctx.gas_limit = 10'000'000;
        benchmark::DoNotOptimize(evm.call(state_copy, ctx));
    }
}
BENCHMARK(BM_RegistryPublishCall);

void BM_VmChunkStore64K(benchmark::State& state) {
    vm::WorldState base;
    base.deploy(vm::registry_address(), vm::registry_bytecode());
    vm::Vm evm;
    const Bytes calldata =
        vm::registry_abi::chunk_calldata(1, 0, Bytes(64 * 1024, 0x42));
    for (auto _ : state) {
        vm::WorldState state_copy = base;
        vm::CallContext ctx;
        ctx.contract = vm::registry_address();
        ctx.caller = crypto::KeyPair::from_seed(1).address();
        ctx.calldata = calldata;
        ctx.gas_limit = 100'000'000;
        benchmark::DoNotOptimize(evm.call(state_copy, ctx));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                            1024);
}
BENCHMARK(BM_VmChunkStore64K);

// ---------------------------------------------------------------------------
// Static analyzer: analysis throughput, cache effectiveness and the
// call-time win from the cached jumpdest bitmap. Also emits
// BENCH_vm_analysis.json whose `parity` subtree (verdicts over a fixed
// program set, the registry contract's block/jumpdest counts, env mask and
// block-table keccak, and the analysis-cache hit counts after a fixed call
// sequence) is exact-gated by scripts/bench_compare.py: any drift means the
// analyzer's seeded behaviour changed.

void BM_VmAnalysis(benchmark::State& state) {
    for (auto _ : state) {
        // Synthetic ~64 KiB program: repeated straight-line blocks
        // (JUMPDEST PUSH1 1 PUSH1 2 ADD POP), terminated by STOP. Every
        // block falls through to the next, so the whole program is
        // reachable and analyzes valid.
        Bytes synthetic;
        const std::size_t kTargetBytes = 64 * 1024;
        const std::uint8_t unit[] = {0x5b, 0x60, 0x01, 0x60, 0x02, 0x01, 0x50};
        while (synthetic.size() + sizeof(unit) < kTargetBytes) {
            synthetic.insert(synthetic.end(), std::begin(unit),
                             std::end(unit));
        }
        synthetic.push_back(0x00);  // STOP

        const vm::CodeAnalysis synthetic_analysis = vm::analyze(synthetic);
        const double analyze_ms = bench::best_wall_ms(
            5, [&] { benchmark::DoNotOptimize(vm::analyze(synthetic)); });
        const double kib = static_cast<double>(synthetic.size()) / 1024.0;

        // Cache effectiveness: one Vm, sixteen registry calls. The first
        // call misses and analyzes; every later call must hit — the
        // "no per-call bitmap rebuild" contract, pinned by the parity gate.
        vm::WorldState base;
        base.deploy(vm::registry_address(), vm::registry_bytecode());
        const Bytes calldata = vm::registry_abi::publish_calldata(
            1, crypto::keccak256(str_bytes("m")), 4, 1024);
        const auto registry_call = [&](const vm::Vm& evm) {
            vm::WorldState state_copy = base;
            vm::CallContext ctx;
            ctx.contract = vm::registry_address();
            ctx.caller = crypto::KeyPair::from_seed(1).address();
            ctx.calldata = calldata;
            ctx.gas_limit = 10'000'000;
            benchmark::DoNotOptimize(evm.call(state_copy, ctx));
        };
        const std::size_t kCalls = 16;
        vm::Vm counted_vm;
        for (std::size_t i = 0; i < kCalls; ++i) registry_call(counted_vm);
        const vm::AnalysisCache::Stats stats =
            counted_vm.analysis_cache().stats();
        const double hit_rate =
            static_cast<double>(stats.hits) /
            static_cast<double>(stats.hits + stats.misses);

        // Call-time speedup: cold constructs a fresh Vm (empty cache, so
        // the call pays for the analysis) vs warm reusing a primed one.
        const double call_cold_ms = bench::best_wall_ms(5, [&] {
            const vm::Vm cold_vm;
            registry_call(cold_vm);
        });
        vm::Vm warm_vm;
        registry_call(warm_vm);  // prime
        const double call_warm_ms =
            bench::best_wall_ms(5, [&] { registry_call(warm_vm); });

        // Fixed program set for the verdict parity table: the registry
        // plus one sample per fatal-diagnostic class and the two benign
        // boundary cases the analyzer must keep accepting.
        struct Sample {
            const char* name;
            Bytes code;
        };
        const Sample samples[] = {
            {"registry", vm::registry_bytecode()},
            {"underflow_add", Bytes{0x01}},
            {"truncated_push2", Bytes{0x61}},
            {"zero_padded_push2", Bytes{0x61, 0xaa}},
            {"jump_into_push_data", Bytes{0x60, 0x04, 0x56, 0x60, 0x5b, 0x00}},
            {"dynamic_jump", Bytes{0x58, 0x56}},
            {"growth_loop", Bytes{0x5b, 0x36, 0x61, 0x00, 0x00, 0x56}},
            {"invalid_opcode", Bytes{0x60, 0x01, 0xfe}},
            {"dead_jumpdest", Bytes{0x00, 0x5b, 0x00}},
        };

        const vm::CodeAnalysis registry =
            vm::analyze(vm::registry_bytecode());
        const Hash32 table_hash =
            crypto::keccak256(vm::block_table_dump(registry));
        std::size_t registry_reachable = 0;
        for (const vm::BasicBlock& block : registry.blocks) {
            if (block.reachable) ++registry_reachable;
        }
        std::size_t registry_jumpdests = 0;
        for (const bool is_dest : registry.jumpdest) {
            if (is_dest) ++registry_jumpdests;
        }

        bench::print_title("E6+ — static analyzer: throughput, cache, gate");
        std::printf("analyze 64KiB straight-line: %8.3f ms  (%.3f ms/KiB)\n",
                    analyze_ms, analyze_ms / kib);
        std::printf(
            "cache after %zu registry calls: %llu hits / %llu misses "
            "(hit rate %.3f)\n",
            kCalls, static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses), hit_rate);
        std::printf(
            "registry call cold vs warm cache: %8.3f ms -> %8.3f ms "
            "(speedup %.2fx)\n",
            call_cold_ms, call_warm_ms, call_cold_ms / call_warm_ms);
        std::printf("registry block table keccak: %s\n",
                    table_hash.hex().c_str());

        bench::Json json = bench::Json::object();
        json.set("bench", "vm_analysis");
        json.set("synthetic_code_bytes",
                 static_cast<std::uint64_t>(synthetic.size()));
        json.set("synthetic_valid", synthetic_analysis.valid());
        json.set("synthetic_blocks", static_cast<std::uint64_t>(
                                         synthetic_analysis.blocks.size()));
        json.set("analysis_ms", analyze_ms);
        json.set("analysis_ms_per_kib", analyze_ms / kib);
        json.set("registry_call_cold_ms", call_cold_ms);
        json.set("registry_call_warm_ms", call_warm_ms);
        json.set("cached_bitmap_speedup", call_cold_ms / call_warm_ms);
        json.set("cache_hit_rate", hit_rate);

        bench::Json parity = bench::Json::object();
        parity.set("registry_calls", static_cast<std::uint64_t>(kCalls));
        parity.set("cache_hits", stats.hits);
        parity.set("cache_misses", stats.misses);
        parity.set("cache_evictions", stats.evictions);
        parity.set("registry_blocks",
                   static_cast<std::uint64_t>(registry.blocks.size()));
        parity.set("registry_reachable_blocks",
                   static_cast<std::uint64_t>(registry_reachable));
        parity.set("registry_unreachable_bytes",
                   static_cast<std::uint64_t>(registry.unreachable_bytes));
        parity.set("registry_jumpdests",
                   static_cast<std::uint64_t>(registry_jumpdests));
        parity.set("registry_env_mask",
                   static_cast<std::uint64_t>(registry.env_mask));
        parity.set("registry_block_table_keccak", table_hash.hex());
        std::uint64_t valid_count = 0;
        bench::Json verdicts = bench::Json::array();
        for (const Sample& sample : samples) {
            const vm::CodeAnalysis analysis = vm::analyze(sample.code);
            if (analysis.valid()) ++valid_count;
            const vm::Diagnostic* fatal = analysis.first_fatal();
            bench::Json row = bench::Json::object();
            row.set("program", sample.name);
            row.set("verdict", analysis.valid() ? "valid" : "invalid");
            row.set("diagnostic", fatal != nullptr ? fatal->name : "");
            verdicts.push(std::move(row));
        }
        parity.set("valid_programs", valid_count);
        parity.set("invalid_programs",
                   static_cast<std::uint64_t>(std::size(samples)) -
                       valid_count);
        parity.set("verdicts", std::move(verdicts));
        json.set("parity", std::move(parity));
        bench::write_bench_json("vm_analysis", json);
    }
}
BENCHMARK(BM_VmAnalysis)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MatmulNN(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<float> a(n * n, 1.5f), b(n * n, 0.5f), out(n * n);
    for (auto _ : state) {
        ml::matmul_nn(a.data(), b.data(), out.data(), n, n, n, false);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n *
                            n * n);
}
BENCHMARK(BM_MatmulNN)->Arg(64)->Arg(128)->Arg(256);

void BM_SimpleNnForwardBatch32(benchmark::State& state) {
    ml::Sequential model = ml::make_simple_nn(ml::InputDims{}, 1);
    ml::Tensor batch({32, 3, 12, 12});
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(batch, false));
    }
}
BENCHMARK(BM_SimpleNnForwardBatch32);

void BM_EffnetBackboneBatch32(benchmark::State& state) {
    ml::EffNetLite model = ml::make_effnet_lite(ml::InputDims{}, 1);
    ml::Tensor batch({32, 3, 12, 12});
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.backbone.forward(batch, false));
    }
}
BENCHMARK(BM_EffnetBackboneBatch32);

void BM_FedAvgThreeClients(benchmark::State& state) {
    std::vector<fl::ModelUpdate> updates(3);
    for (auto& u : updates) {
        u.weights.assign(42'538, 0.25f);
        u.sample_count = 600;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fl::fedavg(updates));
    }
}
BENCHMARK(BM_FedAvgThreeClients);

// ---------------------------------------------------------------------------
// Serial vs parallel: the aggregation hot path. Times one full
// BestCombination round evaluation (n = 5 contributors -> 7 paper
// combinations, each a FedAvg + a real model evaluation) and a paper-scale
// FedAvg reduction, first pinned to one engine thread and then at the
// ambient thread count (BCFL_THREADS or hardware). The fitness numbers must
// be bit-identical between the two runs — that is the engine's contract —
// and the fingerprint lands in BENCH_micro_substrates.json so CI can diff
// it across BCFL_THREADS settings.

std::string fitness_fingerprint(const core::AggregationResult& result) {
    std::string out;
    for (const core::ComboAccuracy& row : result.combos) {
        out += row.label;
        out.push_back('=');
        bench::append_fingerprint(out, row.accuracy);
    }
    return out;
}

void BM_AggregationSerialVsParallel(benchmark::State& state) {
    namespace parallel = core::parallel;

    // Five contributors on the synthetic CIFAR stand-in: real models, real
    // evaluation on a real test split — the n=5 case the engine targets.
    ml::SyntheticCifarConfig data_config;
    data_config.clients = 5;
    data_config.train_per_client = 200;
    data_config.test_per_client = 400;
    data_config.global_test = 400;
    data_config.seed = 2024;
    const ml::FederatedData data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = fl::make_simple_nn_task(data, 1);

    // Distinct updates: the shared initial weights plus per-contributor
    // deterministic noise (evaluation cost does not depend on quality).
    std::unique_ptr<fl::FlModel> seed_model = task.make_model();
    const std::vector<float> base = seed_model->weights();
    std::vector<fl::ModelUpdate> updates(5);
    for (std::size_t u = 0; u < updates.size(); ++u) {
        Rng rng(parallel::task_seed(7, u));
        updates[u].weights = base;
        for (float& w : updates[u].weights) w += rng.uniform(-0.05f, 0.05f);
        updates[u].sample_count = 200.0;
    }
    const std::vector<std::size_t> roster{0, 1, 2, 3, 4};

    std::unique_ptr<fl::FlModel> probe = task.make_model();
    core::AggregationInput input;
    input.updates = updates;
    input.roster_indices = roster;
    input.self_pos = 0;
    input.roster_size = 5;
    input.round = 1;
    input.names = "ABCDE";
    input.evaluate = [&](std::span<const float> candidate) {
        probe->set_weights(candidate);
        return probe->evaluate(task.client_test[0]);
    };
    input.make_evaluator =
        [&task]() -> std::function<double(std::span<const float>)> {
        std::shared_ptr<fl::FlModel> worker_probe = task.make_model();
        return [&task, worker_probe](std::span<const float> candidate) {
            worker_probe->set_weights(candidate);
            return worker_probe->evaluate(task.client_test[0]);
        };
    };

    core::BestCombination strategy;
    const std::size_t threads_parallel = parallel::thread_count();

    for (auto _ : state) {
        core::AggregationResult serial_result;
        core::AggregationResult parallel_result;
        double serial_ms = 0.0;
        double parallel_ms = 0.0;
        {
            const parallel::ThreadCountOverride pin(1);
            serial_ms = bench::best_wall_ms(
                3, [&] { serial_result = strategy.aggregate(input); });
        }
        parallel_ms = bench::best_wall_ms(
            3, [&] { parallel_result = strategy.aggregate(input); });

        const std::string serial_fp = fitness_fingerprint(serial_result);
        const std::string parallel_fp = fitness_fingerprint(parallel_result);

        // FedAvg reduction at paper scale (EffNet-ish dimension).
        std::vector<fl::ModelUpdate> big(5);
        for (std::size_t u = 0; u < big.size(); ++u) {
            Rng rng(parallel::task_seed(11, u));
            big[u].weights.resize(1'000'000);
            for (float& w : big[u].weights) w = rng.uniform(-1.0f, 1.0f);
            big[u].sample_count = 600.0;
        }
        std::vector<float> fedavg_serial;
        std::vector<float> fedavg_parallel;
        double fedavg_serial_ms = 0.0;
        double fedavg_parallel_ms = 0.0;
        {
            const parallel::ThreadCountOverride pin(1);
            fedavg_serial_ms =
                bench::best_wall_ms(3, [&] { fedavg_serial = fl::fedavg(big); });
        }
        fedavg_parallel_ms =
            bench::best_wall_ms(3, [&] { fedavg_parallel = fl::fedavg(big); });

        bench::print_title(
            "E6+ — aggregation hot path, serial vs parallel engine");
        std::printf("threads: serial=1 parallel=%zu (hardware %u)\n",
                    threads_parallel, std::thread::hardware_concurrency());
        std::printf(
            "BestCombination n=5 (7 combos): %8.2f ms -> %8.2f ms  "
            "(speedup %.2fx, fitness %s)\n",
            serial_ms, parallel_ms, serial_ms / parallel_ms,
            serial_fp == parallel_fp ? "identical" : "DIVERGED");
        std::printf(
            "FedAvg 5x1M floats:            %8.2f ms -> %8.2f ms  "
            "(speedup %.2fx, result %s)\n",
            fedavg_serial_ms, fedavg_parallel_ms,
            fedavg_serial_ms / fedavg_parallel_ms,
            fedavg_serial == fedavg_parallel ? "identical" : "DIVERGED");

        bench::Json json = bench::Json::object();
        json.set("bench", "micro_substrates");
        json.set("hardware_concurrency",
                 static_cast<std::uint64_t>(
                     std::thread::hardware_concurrency()));
        json.set("threads_serial", std::uint64_t{1});
        json.set("threads_parallel",
                 static_cast<std::uint64_t>(threads_parallel));
        json.set("contributors", std::uint64_t{5});
        json.set("combos",
                 static_cast<std::uint64_t>(serial_result.combos.size()));
        json.set("best_combination_serial_ms", serial_ms);
        json.set("best_combination_parallel_ms", parallel_ms);
        json.set("serial_vs_parallel_speedup", serial_ms / parallel_ms);
        json.set("fitness_identical", serial_fp == parallel_fp);
        json.set("fitness_fingerprint", parallel_fp);
        json.set("fedavg_dim", std::uint64_t{1'000'000});
        json.set("fedavg_serial_ms", fedavg_serial_ms);
        json.set("fedavg_parallel_ms", fedavg_parallel_ms);
        json.set("fedavg_serial_vs_parallel_speedup",
                 fedavg_serial_ms / fedavg_parallel_ms);
        json.set("fedavg_identical", fedavg_serial == fedavg_parallel);
        bench::Json points = bench::Json::array();
        for (const core::ComboAccuracy& row : serial_result.combos) {
            bench::Json point = bench::Json::object();
            point.set("label", row.label);
            point.set("accuracy", row.accuracy);
            points.push(std::move(point));
        }
        json.set("points", std::move(points));
        bench::write_bench_json("micro_substrates", json);
    }
}
BENCHMARK(BM_AggregationSerialVsParallel)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
