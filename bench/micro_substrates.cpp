// E6 — substrate microbenchmarks (auto-timed google-benchmark): an honesty
// check on the costs underlying the simulated deployment, and a performance
// regression harness for the hand-written crypto/VM/ML kernels.
#include <benchmark/benchmark.h>

#include "chain/pow.hpp"
#include "chain/types.hpp"
#include "crypto/keccak.hpp"
#include "crypto/merkle.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "fl/fedavg.hpp"
#include "ml/layers.hpp"
#include "ml/models.hpp"
#include "rlp/rlp.hpp"
#include "vm/evm.hpp"
#include "vm/registry_contract.hpp"

namespace {

using namespace bcfl;

void BM_Keccak256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::keccak256(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(data));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(1);
    const Bytes message = str_bytes("round 3 model update");
    for (auto _ : state) {
        benchmark::DoNotOptimize(key.sign(message));
    }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(1);
    const Bytes message = str_bytes("round 3 model update");
    const auto sig = key.sign(message);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::verify(key.public_key(), message, sig));
    }
}
BENCHMARK(BM_SchnorrVerify);

void BM_MerkleRoot(benchmark::State& state) {
    std::vector<Hash32> leaves;
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
        leaves.push_back(crypto::keccak256(be_bytes(i)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::merkle_root(leaves));
    }
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_RlpTransactionRoundTrip(benchmark::State& state) {
    const auto key = crypto::KeyPair::from_seed(3);
    const auto tx = chain::Transaction::make_signed(
        key, 7, Address{}, 100'000, 2, Bytes(1024, 0x7e));
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::Transaction::decode(tx.encode()));
    }
}
BENCHMARK(BM_RlpTransactionRoundTrip);

void BM_PowHashRate(benchmark::State& state) {
    chain::BlockHeader header;
    header.number = 1;
    header.difficulty = 0xffffffffffffffffull;  // never succeeds: pure rate
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::mine_seal(header, nonce, 100));
        nonce += 100;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_PowHashRate);

void BM_RegistryPublishCall(benchmark::State& state) {
    vm::WorldState base;
    base.deploy(vm::registry_address(), vm::registry_bytecode());
    vm::Vm evm;
    const Bytes calldata = vm::registry_abi::publish_calldata(
        1, crypto::keccak256(str_bytes("m")), 4, 1024);
    for (auto _ : state) {
        vm::WorldState state_copy = base;
        vm::CallContext ctx;
        ctx.contract = vm::registry_address();
        ctx.caller = crypto::KeyPair::from_seed(1).address();
        ctx.calldata = calldata;
        ctx.gas_limit = 10'000'000;
        benchmark::DoNotOptimize(evm.call(state_copy, ctx));
    }
}
BENCHMARK(BM_RegistryPublishCall);

void BM_VmChunkStore64K(benchmark::State& state) {
    vm::WorldState base;
    base.deploy(vm::registry_address(), vm::registry_bytecode());
    vm::Vm evm;
    const Bytes calldata =
        vm::registry_abi::chunk_calldata(1, 0, Bytes(64 * 1024, 0x42));
    for (auto _ : state) {
        vm::WorldState state_copy = base;
        vm::CallContext ctx;
        ctx.contract = vm::registry_address();
        ctx.caller = crypto::KeyPair::from_seed(1).address();
        ctx.calldata = calldata;
        ctx.gas_limit = 100'000'000;
        benchmark::DoNotOptimize(evm.call(state_copy, ctx));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                            1024);
}
BENCHMARK(BM_VmChunkStore64K);

void BM_MatmulNN(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<float> a(n * n, 1.5f), b(n * n, 0.5f), out(n * n);
    for (auto _ : state) {
        ml::matmul_nn(a.data(), b.data(), out.data(), n, n, n, false);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n *
                            n * n);
}
BENCHMARK(BM_MatmulNN)->Arg(64)->Arg(128)->Arg(256);

void BM_SimpleNnForwardBatch32(benchmark::State& state) {
    ml::Sequential model = ml::make_simple_nn(ml::InputDims{}, 1);
    ml::Tensor batch({32, 3, 12, 12});
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(batch, false));
    }
}
BENCHMARK(BM_SimpleNnForwardBatch32);

void BM_EffnetBackboneBatch32(benchmark::State& state) {
    ml::EffNetLite model = ml::make_effnet_lite(ml::InputDims{}, 1);
    ml::Tensor batch({32, 3, 12, 12});
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.backbone.forward(batch, false));
    }
}
BENCHMARK(BM_EffnetBackboneBatch32);

void BM_FedAvgThreeClients(benchmark::State& state) {
    std::vector<fl::ModelUpdate> updates(3);
    for (auto& u : updates) {
        u.weights.assign(42'538, 0.25f);
        u.sample_count = 600;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(fl::fedavg(updates));
    }
}
BENCHMARK(BM_FedAvgThreeClients);

}  // namespace

BENCHMARK_MAIN();
