// E3 — chain-performance claims from §II-A2 (the background the paper builds
// its asynchronous-aggregation argument on) plus the Figure-2 workflow:
//
//   (a) throughput and inclusion latency vs number of participants — prior
//       work reports throughput roughly halving when participants double;
//   (b) block interval vs PoW difficulty at fixed hash rate;
//   (c) block propagation delay vs payload (model) size;
//   (d) long-chain import/reorg scaling: per-import cost at height H must
//       be flat (O(new work)), not grow with H — the regression axis for
//       the chain-index overhaul, with a cross-compiler-deterministic
//       "parity" subtree that bench_compare.py gates exactly;
//   (e) peers-axis scaling past the 16-participant ceiling of (a): flood
//       dissemination over the flat full mesh vs the hierarchical
//       committee overlay (core/topology.hpp) at 16/64/256 peers, with a
//       parity subtree of pure-integer topology facts.
//
// BCFL_CHAIN_BENCH_SECTIONS=long_chain,scaling (comma list of throughput,
// difficulty, propagation, long_chain, scaling) restricts a run to the
// named sections — CI runs only the deterministic axes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "chain/blockchain.hpp"
#include "chain/pow.hpp"
#include "core/topology.hpp"
#include "crypto/keccak.hpp"
#include "net/sim_transport.hpp"
#include "node/node.hpp"
#include "vm/registry_contract.hpp"

namespace {

using namespace bcfl;
namespace abi = vm::registry_abi;

bool section_enabled(const std::string& name) {
    // getenv: the bench harness reads its section filter on the main
    // thread during registration, before any benchmark (or engine worker)
    // runs; nothing in the tree calls setenv.
    const char* env =
        std::getenv("BCFL_CHAIN_BENCH_SECTIONS");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') return true;
    const std::string list(env);
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t end = list.find(',', start);
        const std::string token =
            list.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
        if (token == name) return true;
        if (end == std::string::npos) break;
        start = end + 1;
    }
    return false;
}

double us_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

struct ThroughputPoint {
    std::size_t participants;
    double txs_per_second;
    double mean_inclusion_latency_s;
    double mean_block_interval_s;
};

/// Saturates the chain with chunk transactions at a fixed *total* offered
/// load and measures canonical throughput. Block capacity is bounded by the
/// gas limit and every block must reach every peer over a shared 20 Mbit/s
/// uplink, so doubling the participant count inflates propagation time,
/// multiplies gossip copies and erodes effective throughput — the
/// degradation SS II-A2 cites.
ThroughputPoint measure_throughput(std::size_t participants,
                                   std::size_t payload_bytes,
                                   net::SimTime horizon) {
    net::LinkParams link;
    link.bytes_per_us = 2.5;   // 20 Mbit/s shared uplink
    link.latency = net::ms(20);
    net::SimTransport transport(link, 17);
    auto& sim = transport.sim();
    chain::ChainConfig chain_config;
    chain_config.initial_difficulty = 1200;
    chain_config.min_difficulty = 64;
    chain_config.target_interval_ms = 4000;
    chain_config.block_gas_limit = 8'000'000;  // ~ a dozen chunk txs / block

    std::vector<std::unique_ptr<node::Node>> nodes;
    for (std::size_t i = 0; i < participants; ++i) {
        node::NodeConfig config;
        config.chain = chain_config;
        config.key_seed = 100 + i;
        config.hash_rate = 2400.0 / static_cast<double>(participants);
        config.rng_seed = 50 + i;
        nodes.push_back(std::make_unique<node::Node>(transport, config));
    }
    for (auto& node : nodes) node->start();

    // Fixed total offered load: 4 chunk txs per second across all senders.
    std::vector<std::uint64_t> nonces(participants, 0);
    std::unordered_map<Hash32, net::SimTime, FixedBytesHasher> submit_time;
    const Bytes payload(payload_bytes, 0x37);
    const net::SimTime period =
        net::seconds(1) * participants / 4;  // per-sender period
    std::function<void(std::size_t)> spam = [&](std::size_t i) {
        auto tx = chain::Transaction::make_signed(
            nodes[i]->key(), nonces[i]++, vm::registry_address(),
            21'000 + 16 * (payload.size() + 100) + 400'000, 1,
            abi::chunk_calldata(1, nonces[i], payload));
        submit_time[tx.hash()] = sim.now();
        nodes[i]->submit_tx(tx);
        if (sim.now() + period < horizon) {
            sim.schedule_after(period, [&, i] { spam(i); });
        }
    };
    for (std::size_t i = 0; i < participants; ++i) spam(i);
    sim.run_until(horizon);

    // Measure from node 0's canonical chain.
    const auto& chain = nodes[0]->chain();
    std::size_t mined = 0;
    double latency_sum = 0.0;
    std::size_t latency_samples = 0;
    for (std::uint64_t n = 1; n <= chain.height(); ++n) {
        const chain::Block* block = chain.block_by_number(n);
        mined += block->transactions.size();
        for (const auto& tx : block->transactions) {
            const auto it = submit_time.find(tx.hash());
            if (it == submit_time.end()) continue;
            const double latency =
                static_cast<double>(block->header.timestamp_ms) / 1000.0 -
                net::to_seconds(it->second);
            if (latency >= 0) {
                latency_sum += latency;
                ++latency_samples;
            }
        }
    }

    ThroughputPoint point;
    point.participants = participants;
    point.txs_per_second =
        static_cast<double>(mined) / net::to_seconds(horizon);
    point.mean_inclusion_latency_s =
        latency_samples ? latency_sum / static_cast<double>(latency_samples)
                        : 0.0;
    point.mean_block_interval_s =
        chain.height() > 0
            ? net::to_seconds(horizon) / static_cast<double>(chain.height())
            : 0.0;
    return point;
}

/// E3d — grows a 512-block chain with steady tx traffic, recording the
/// wall time of every import, then forces a 32-deep reorg. Pure integer /
/// hash arithmetic (no simulation, no floating point), so the counts and
/// the canonical tx ordering are byte-stable across compilers — they form
/// the gated "parity" subtree. Timings are informational.
void run_long_chain(bench::Json& json) {
    using namespace bcfl::chain;
    bench::print_title(
        "E3d — long-chain import & reorg scaling "
        "(per-import cost must stay flat in height: O(new work), not O(H))");
    const auto section_begin = std::chrono::steady_clock::now();

    ChainConfig config;
    config.initial_difficulty = 64;
    config.min_difficulty = 64;
    config.fixed_difficulty = true;
    Blockchain main_chain(config, std::make_shared<NullExecutor>());
    Blockchain fork_builder(config, std::make_shared<NullExecutor>());

    constexpr std::size_t kBlocks = 512;
    constexpr std::size_t kTxsPerBlock = 3;
    constexpr std::size_t kSenders = 8;
    constexpr std::uint64_t kForkDepth = 32;
    const std::uint64_t fork_height = kBlocks - kForkDepth;

    std::vector<crypto::KeyPair> keys;
    for (std::size_t s = 0; s < kSenders; ++s) {
        keys.push_back(crypto::KeyPair::from_seed(900 + s));
    }
    std::vector<std::uint64_t> nonces(kSenders, 0);
    std::uint64_t ts = 0;
    const auto seal_on = [&](Blockchain& builder,
                             std::vector<Transaction> txs) {
        Block block =
            builder.build_block(crypto::KeyPair::from_seed(880).address(),
                                std::move(txs), ts += 1000);
        block.header.pow_nonce =
            *mine_seal(block.header, 0, 100'000'000);
        return block;
    };

    // Main chain: 512 blocks of steady traffic, per-import latency logged.
    std::vector<double> import_us(kBlocks, 0.0);
    for (std::size_t b = 0; b < kBlocks; ++b) {
        std::vector<Transaction> txs;
        for (std::size_t t = 0; t < kTxsPerBlock; ++t) {
            const std::size_t s = (b * kTxsPerBlock + t) % kSenders;
            txs.push_back(Transaction::make_signed(
                keys[s], nonces[s]++, Address{}, 100'000, 1 + s,
                str_bytes("long-chain payload")));
        }
        const Block block = seal_on(main_chain, txs);
        const auto begin = std::chrono::steady_clock::now();
        const ImportResult result = main_chain.import_block(block);
        import_us[b] = us_since(begin);
        if (result.status != ImportStatus::added_head) {
            std::printf("long_chain: unexpected import failure at %zu: %s\n",
                        b, result.reason.c_str());
            return;
        }
        if (block.header.number <= fork_height) {
            fork_builder.import_block(block);
        }
    }

    // Scripted deep reorg: a 33-block side branch from 32 below the tip
    // overtakes on total difficulty; the switch must only touch the
    // divergent suffix.
    std::vector<crypto::KeyPair> side_keys;
    for (std::size_t s = 0; s < 4; ++s) {
        side_keys.push_back(crypto::KeyPair::from_seed(950 + s));
    }
    std::vector<std::uint64_t> side_nonces(side_keys.size(), 0);
    double reorg_us = 0.0;
    std::uint64_t abandoned = 0;
    for (std::uint64_t i = 0; i <= kForkDepth; ++i) {
        std::vector<Transaction> txs;
        for (std::size_t t = 0; t < 2; ++t) {
            const std::size_t s = (i * 2 + t) % side_keys.size();
            txs.push_back(Transaction::make_signed(
                side_keys[s], side_nonces[s]++, Address{}, 100'000, 2,
                str_bytes("fork payload")));
        }
        const Block block = seal_on(fork_builder, txs);
        if (fork_builder.import_block(block).status !=
            ImportStatus::added_head) {
            std::printf("long_chain: fork builder rejected its block\n");
            return;
        }
        const auto begin = std::chrono::steady_clock::now();
        const ImportResult result = main_chain.import_block(block);
        const double elapsed = us_since(begin);
        if (i == kForkDepth) {
            reorg_us = elapsed;
            abandoned = result.abandoned_txs.size();
            if (result.status != ImportStatus::added_head ||
                !result.reorged) {
                std::printf("long_chain: final fork block did not reorg\n");
                return;
            }
        }
    }

    // Windowed means over the import-latency series.
    struct Window {
        std::size_t lo, hi;
    };
    const Window windows[] = {{16, 80}, {224, 288}, {448, 512}};
    std::printf("%16s %20s\n", "height window", "mean import (us)");
    bench::Json window_points = bench::Json::array();
    double early_mean = 0.0;
    double late_mean = 0.0;
    for (const Window& w : windows) {
        double sum = 0.0;
        for (std::size_t i = w.lo; i < w.hi; ++i) sum += import_us[i];
        const double mean = sum / static_cast<double>(w.hi - w.lo);
        if (w.lo == windows[0].lo) early_mean = mean;
        late_mean = mean;
        std::printf("     [%3zu, %3zu) %20.1f\n", w.lo, w.hi, mean);
        bench::Json point = bench::Json::object();
        point.set("height_lo", static_cast<std::uint64_t>(w.lo));
        point.set("height_hi", static_cast<std::uint64_t>(w.hi));
        point.set("mean_import_us", mean);
        window_points.push(std::move(point));
    }
    const double ratio = early_mean > 0.0 ? late_mean / early_mean : 0.0;
    std::printf("late/early import ratio: %.2f (flat = O(new work); the "
                "pre-overhaul O(height) paths grew this linearly)\n",
                ratio);
    std::printf("reorg depth %llu: %.1f us, %llu abandoned txs\n",
                static_cast<unsigned long long>(kForkDepth), reorg_us,
                static_cast<unsigned long long>(abandoned));

    // Parity: deterministic counts + canonical tx ordering, cross-checked
    // against a from-scratch parent-link walk of the head branch.
    bool index_consistent = true;
    {
        Hash32 cursor = main_chain.head_hash();
        std::uint64_t number = main_chain.height();
        while (true) {
            const Block* walked = main_chain.block_by_hash(cursor);
            const Block* indexed = main_chain.block_by_number(number);
            if (walked == nullptr || indexed == nullptr ||
                walked->hash() != indexed->hash()) {
                index_consistent = false;
                break;
            }
            if (number == 0) break;
            cursor = walked->header.parent_hash;
            --number;
        }
    }
    Bytes ordering;
    std::uint64_t canonical_txs = 0;
    for (std::uint64_t n = 1; n <= main_chain.height(); ++n) {
        const Block* block = main_chain.block_by_number(n);
        if (block == nullptr) {
            index_consistent = false;
            break;
        }
        for (const Transaction& tx : block->transactions) {
            append(ordering, tx.hash().view());
            ++canonical_txs;
        }
    }
    const Hash32 digest = crypto::keccak256(ordering);

    bench::Json section = bench::Json::object();
    section.set("blocks", static_cast<std::uint64_t>(kBlocks));
    section.set("txs_per_block", static_cast<std::uint64_t>(kTxsPerBlock));
    section.set("fork_depth", kForkDepth);
    section.set("window_points", std::move(window_points));
    section.set("late_vs_early_import_ratio", ratio);
    section.set("reorg_wall_us", reorg_us);
    section.set("long_chain_wall_ms", bench::ms_since(section_begin));
    bench::Json parity = bench::Json::object();
    parity.set("head_number", main_chain.height());
    parity.set("total_blocks",
               static_cast<std::uint64_t>(main_chain.total_blocks()));
    parity.set("canonical_txs", canonical_txs);
    parity.set("abandoned_in_reorg", abandoned);
    parity.set("index_consistent", index_consistent ? 1 : 0);
    parity.set("canonical_tx_digest", "0x" + digest.hex());
    section.set("parity", std::move(parity));
    json.set("long_chain", std::move(section));
}

struct FloodResult {
    /// Nodes that received the payload at least once (must equal the
    /// roster for the overlay to be a working broadcast medium).
    std::size_t covered = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    /// Simulated time until the last first-receipt.
    double coverage_ms = 0.0;
};

/// Naive flood over a fixed adjacency: every node forwards the payload to
/// all neighbors (except the sender) on first receipt. With shared
/// uplinks, a node's broadcast serializes — the cost model that makes a
/// full mesh superlinear in the roster while the committee overlay keeps
/// per-node fan-out bounded by the cluster size / head count.
FloodResult measure_flood(
    const std::vector<std::vector<std::size_t>>& adjacency,
    std::size_t origin, std::size_t payload_bytes) {
    net::LinkParams link;
    link.latency = net::ms(20);
    link.bytes_per_us = 2.5;  // 20 Mbit/s shared uplink, as in E3a
    link.jitter_fraction = 0.0;
    net::SimTransport transport(link, 23);
    auto& sim = transport.sim();
    auto& network = transport.network();

    const std::size_t count = adjacency.size();
    std::vector<bool> seen(count, false);
    net::SimTime last_receipt = 0;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < count; ++i) {
        network.add_node([&, i](net::NodeId from, const Bytes& payload) {
            if (seen[i]) return;
            seen[i] = true;
            ++covered;
            last_receipt = sim.now();
            for (std::size_t neighbor : adjacency[i]) {
                if (neighbor == static_cast<std::size_t>(from)) continue;
                network.send(static_cast<net::NodeId>(i),
                             static_cast<net::NodeId>(neighbor), payload);
            }
        });
    }
    seen[origin] = true;
    ++covered;
    const Bytes payload(payload_bytes, 0x5a);
    for (std::size_t neighbor : adjacency[origin]) {
        network.send(static_cast<net::NodeId>(origin),
                     static_cast<net::NodeId>(neighbor), payload);
    }
    sim.run();

    FloodResult result;
    result.covered = covered;
    result.messages_sent = network.stats().messages_sent;
    result.bytes_sent = network.stats().bytes_sent;
    result.coverage_ms = static_cast<double>(last_receipt) / 1000.0;
    return result;
}

/// E3e — the participants axis past 16. E3a's full deployment saturates
/// well before 64 peers because every model tx and block crosses a full
/// mesh; this section isolates the dissemination cost at 16/64/256 peers
/// and contrasts it with the hierarchical committee overlay the topology
/// layer builds (heads mesh among themselves and fan out to their own
/// members). All roster/edge/message counts and the adjacency digest are
/// pure integer arithmetic — they form the gated "parity" subtree;
/// simulated coverage times are informational.
void run_scaling(bench::Json& json) {
    bench::print_title(
        "E3e — dissemination scaling vs participants: flat full mesh vs "
        "hierarchical committee overlay (64 KB payload, 20 Mbit/s)");
    const auto section_begin = std::chrono::steady_clock::now();
    constexpr std::size_t kPayload = 64 * 1024;

    std::printf("%8s %10s %14s %18s %14s %18s\n", "peers", "topology",
                "overlay edges", "flood messages", "coverage", "time (ms)");
    bench::Json points = bench::Json::array();
    const struct {
        std::size_t peers;
        std::size_t cluster_size;
    } axis[] = {{16, 4}, {64, 8}, {256, 16}};
    for (const auto& [peers, cluster_size] : axis) {
        // Flat: the full mesh every pre-topology deployment gossips over.
        std::vector<std::vector<std::size_t>> mesh(peers);
        for (std::size_t i = 0; i < peers; ++i) {
            for (std::size_t j = 0; j < peers; ++j) {
                if (j != i) mesh[i].push_back(j);
            }
        }
        // Hierarchical: the overlay core/experiment.cpp wires for a
        // resolved topology — heads mesh + per-cluster stars.
        core::TopologyConfig config;
        config.cluster_size = cluster_size;
        const core::ResolvedTopology topo =
            core::resolve_topology(config, peers);
        std::vector<std::vector<std::size_t>> overlay(peers);
        for (std::size_t k = 0; k < topo.clusters.size(); ++k) {
            const std::size_t head = topo.heads[k];
            for (std::size_t other : topo.heads) {
                if (other != head) overlay[head].push_back(other);
            }
            for (std::size_t member : topo.clusters[k]) {
                if (member == head) continue;
                overlay[head].push_back(member);
                overlay[member].push_back(head);
            }
            std::sort(overlay[head].begin(), overlay[head].end());
        }

        const auto edge_count =
            [](const std::vector<std::vector<std::size_t>>& adjacency) {
                std::uint64_t degrees = 0;
                for (const auto& neighbors : adjacency) {
                    degrees += neighbors.size();
                }
                return degrees / 2;
            };
        const auto digest_of =
            [](const std::vector<std::vector<std::size_t>>& adjacency) {
                Bytes wire;
                for (std::size_t i = 0; i < adjacency.size(); ++i) {
                    append(wire, be_bytes(static_cast<std::uint64_t>(i)));
                    for (std::size_t neighbor : adjacency[i]) {
                        append(wire, be_bytes(
                                         static_cast<std::uint64_t>(neighbor)));
                    }
                }
                return crypto::keccak256(wire);
            };

        const FloodResult flat =
            measure_flood(mesh, /*origin=*/0, kPayload);
        const FloodResult tiered =
            measure_flood(overlay, topo.top_head, kPayload);
        std::printf("%8zu %10s %14llu %18llu %11zu/%zu %18.1f\n", peers,
                    "flat", static_cast<unsigned long long>(edge_count(mesh)),
                    static_cast<unsigned long long>(flat.messages_sent),
                    flat.covered, peers, flat.coverage_ms);
        std::printf("%8zu %10s %14llu %18llu %11zu/%zu %18.1f\n", peers,
                    "tiered",
                    static_cast<unsigned long long>(edge_count(overlay)),
                    static_cast<unsigned long long>(tiered.messages_sent),
                    tiered.covered, peers, tiered.coverage_ms);

        bench::Json point = bench::Json::object();
        point.set("participants", static_cast<std::uint64_t>(peers));
        point.set("cluster_size", static_cast<std::uint64_t>(cluster_size));
        point.set("flat_coverage_ms", flat.coverage_ms);
        point.set("tiered_coverage_ms", tiered.coverage_ms);
        point.set("flat_bytes_sent", flat.bytes_sent);
        point.set("tiered_bytes_sent", tiered.bytes_sent);
        bench::Json parity = bench::Json::object();
        parity.set("participants", static_cast<std::uint64_t>(peers));
        parity.set("clusters",
                   static_cast<std::uint64_t>(topo.clusters.size()));
        parity.set("heads", static_cast<std::uint64_t>(topo.heads.size()));
        parity.set("max_cluster_size",
                   static_cast<std::uint64_t>(topo.max_cluster_size()));
        parity.set("flat_edges", edge_count(mesh));
        parity.set("overlay_edges", edge_count(overlay));
        parity.set("flat_flood_messages", flat.messages_sent);
        parity.set("tiered_flood_messages", tiered.messages_sent);
        parity.set("flat_covered", static_cast<std::uint64_t>(flat.covered));
        parity.set("tiered_covered",
                   static_cast<std::uint64_t>(tiered.covered));
        parity.set("overlay_digest", "0x" + digest_of(overlay).hex());
        point.set("parity", std::move(parity));
        points.push(std::move(point));
    }

    bench::Json section = bench::Json::object();
    section.set("payload_bytes", static_cast<std::uint64_t>(kPayload));
    section.set("points", std::move(points));
    section.set("scaling_wall_ms", bench::ms_since(section_begin));
    json.set("scaling", std::move(section));
}

void BM_ChainPerformance(benchmark::State& state) {
    for (auto _ : state) {
        bench::Json json = bench::Json::object();
        json.set("bench", "chain_performance");
        // The chain sections run the deterministic discrete-event loop,
        // which is inherently single-threaded; wall time per section is
        // recorded so the event-loop cost itself is tracked cross-PR (the
        // parallel-engine speedups live in BENCH_micro_substrates.json and
        // BENCH_table1_fig3_vanilla_fl.json).

        bench::Json throughput_points = bench::Json::array();
        if (section_enabled("throughput")) {
            bench::print_title(
                "E3a — throughput & inclusion latency vs participants "
                "(64 KB chunk txs, saturated, 20 Mbit/s shared uplinks)");
            std::printf("%12s %14s %22s %20s\n", "participants", "txs/s",
                        "inclusion latency (s)", "block interval (s)");
            const auto throughput_begin = std::chrono::steady_clock::now();
            for (std::size_t n : {2, 4, 8, 16}) {
                const ThroughputPoint p =
                    measure_throughput(n, 64 * 1024, net::seconds(200));
                std::printf("%12zu %14.3f %22.2f %20.2f\n", p.participants,
                            p.txs_per_second, p.mean_inclusion_latency_s,
                            p.mean_block_interval_s);
                bench::Json point = bench::Json::object();
                point.set("participants",
                          static_cast<std::uint64_t>(p.participants));
                point.set("txs_per_second", p.txs_per_second);
                point.set("mean_inclusion_latency_s",
                          p.mean_inclusion_latency_s);
                point.set("mean_block_interval_s", p.mean_block_interval_s);
                throughput_points.push(std::move(point));
            }
            json.set("throughput_wall_ms", bench::ms_since(throughput_begin));
        }

        bench::Json difficulty_points = bench::Json::array();
        if (section_enabled("difficulty")) {
            bench::print_title(
                "E3b — block interval vs PoW difficulty (1 miner, 400 h/s, "
                "retarget disabled)");
            std::printf("%12s %20s %16s\n", "difficulty", "mean interval (s)",
                        "blocks mined");
            const auto difficulty_begin = std::chrono::steady_clock::now();
            for (std::uint64_t difficulty : {200u, 400u, 800u, 1600u, 3200u}) {
                net::SimTransport transport(net::LinkParams{}, 3);
                node::NodeConfig config;
                config.chain.initial_difficulty = difficulty;
                config.chain.min_difficulty = difficulty;
                config.chain.fixed_difficulty = true;
                config.key_seed = 5;
                config.hash_rate = 400.0;
                node::Node node(transport, config);
                node.start();
                transport.sim().run_until(net::seconds(2000));
                const double interval =
                    node.chain().height() > 0
                        ? 2000.0 / static_cast<double>(node.chain().height())
                        : 0.0;
                std::printf(
                    "%12llu %20.2f %16llu\n",
                    static_cast<unsigned long long>(difficulty), interval,
                    static_cast<unsigned long long>(node.chain().height()));
                bench::Json point = bench::Json::object();
                point.set("difficulty", difficulty);
                point.set("mean_interval_s", interval);
                point.set("blocks_mined", node.chain().height());
                difficulty_points.push(std::move(point));
            }
            json.set("difficulty_wall_ms", bench::ms_since(difficulty_begin));
        }

        bench::Json propagation_points = bench::Json::array();
        if (section_enabled("propagation")) {
            bench::print_title(
                "E3c — Figure 2 workflow: block propagation delay vs model "
                "payload size (100 Mbit/s LAN)");
            std::printf("%16s %24s\n", "payload (KB)",
                        "propagation delay (ms)");
            const auto propagation_begin = std::chrono::steady_clock::now();
            for (std::size_t kb : {16u, 64u, 248u, 1024u, 4096u, 21'200u}) {
                net::LinkParams link;
                link.jitter_fraction = 0.0;
                net::SimTransport transport(link, 5);
                auto& sim = transport.sim();
                auto& network = transport.network();
                net::SimTime delivered = 0;
                const auto a =
                    network.add_node([](net::NodeId, const Bytes&) {});
                const auto b = network.add_node(
                    [&](net::NodeId, const Bytes&) { delivered = sim.now(); });
                (void)a;
                network.send(0, b, Bytes(kb * 1024, 0x11));
                sim.run();
                const double delay_ms =
                    static_cast<double>(delivered) / 1000.0;
                std::printf("%16zu %24.2f\n", kb, delay_ms);
                bench::Json point = bench::Json::object();
                point.set("payload_kb", static_cast<std::uint64_t>(kb));
                point.set("propagation_delay_ms", delay_ms);
                propagation_points.push(std::move(point));
            }
            json.set("propagation_wall_ms",
                     bench::ms_since(propagation_begin));
        }

        json.set("throughput_points", std::move(throughput_points));
        json.set("difficulty_points", std::move(difficulty_points));
        json.set("propagation_points", std::move(propagation_points));
        if (section_enabled("long_chain")) run_long_chain(json);
        if (section_enabled("scaling")) run_scaling(json);
        bench::write_bench_json("chain_performance", json);
    }
}

}  // namespace

BENCHMARK(BM_ChainPerformance)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
