// E3 — chain-performance claims from §II-A2 (the background the paper builds
// its asynchronous-aggregation argument on) plus the Figure-2 workflow:
//
//   (a) throughput and inclusion latency vs number of participants — prior
//       work reports throughput roughly halving when participants double;
//   (b) block interval vs PoW difficulty at fixed hash rate;
//   (c) block propagation delay vs payload (model) size.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "crypto/keccak.hpp"
#include "net/network.hpp"
#include "net/sim.hpp"
#include "node/node.hpp"
#include "vm/registry_contract.hpp"

namespace {

using namespace bcfl;
namespace abi = vm::registry_abi;

struct ThroughputPoint {
    std::size_t participants;
    double txs_per_second;
    double mean_inclusion_latency_s;
    double mean_block_interval_s;
};

/// Saturates the chain with chunk transactions at a fixed *total* offered
/// load and measures canonical throughput. Block capacity is bounded by the
/// gas limit and every block must reach every peer over a shared 20 Mbit/s
/// uplink, so doubling the participant count inflates propagation time,
/// multiplies gossip copies and erodes effective throughput — the
/// degradation SS II-A2 cites.
ThroughputPoint measure_throughput(std::size_t participants,
                                   std::size_t payload_bytes,
                                   net::SimTime horizon) {
    net::Simulation sim;
    net::LinkParams link;
    link.bytes_per_us = 2.5;   // 20 Mbit/s shared uplink
    link.latency = net::ms(20);
    net::Network network(sim, link, 17);
    chain::ChainConfig chain_config;
    chain_config.initial_difficulty = 1200;
    chain_config.min_difficulty = 64;
    chain_config.target_interval_ms = 4000;
    chain_config.block_gas_limit = 8'000'000;  // ~ a dozen chunk txs / block

    std::vector<std::unique_ptr<node::Node>> nodes;
    for (std::size_t i = 0; i < participants; ++i) {
        node::NodeConfig config;
        config.chain = chain_config;
        config.key_seed = 100 + i;
        config.hash_rate = 2400.0 / static_cast<double>(participants);
        config.rng_seed = 50 + i;
        nodes.push_back(std::make_unique<node::Node>(sim, network, config));
    }
    for (auto& node : nodes) node->start();

    // Fixed total offered load: 4 chunk txs per second across all senders.
    std::vector<std::uint64_t> nonces(participants, 0);
    std::unordered_map<Hash32, net::SimTime, FixedBytesHasher> submit_time;
    const Bytes payload(payload_bytes, 0x37);
    const net::SimTime period =
        net::seconds(1) * participants / 4;  // per-sender period
    std::function<void(std::size_t)> spam = [&](std::size_t i) {
        auto tx = chain::Transaction::make_signed(
            nodes[i]->key(), nonces[i]++, vm::registry_address(),
            21'000 + 16 * (payload.size() + 100) + 400'000, 1,
            abi::chunk_calldata(1, nonces[i], payload));
        submit_time[tx.hash()] = sim.now();
        nodes[i]->submit_tx(tx);
        if (sim.now() + period < horizon) {
            sim.schedule_after(period, [&, i] { spam(i); });
        }
    };
    for (std::size_t i = 0; i < participants; ++i) spam(i);
    sim.run_until(horizon);

    // Measure from node 0's canonical chain.
    const auto& chain = nodes[0]->chain();
    std::size_t mined = 0;
    double latency_sum = 0.0;
    std::size_t latency_samples = 0;
    for (std::uint64_t n = 1; n <= chain.height(); ++n) {
        const chain::Block* block = chain.block_by_number(n);
        mined += block->transactions.size();
        for (const auto& tx : block->transactions) {
            const auto it = submit_time.find(tx.hash());
            if (it == submit_time.end()) continue;
            const double latency =
                static_cast<double>(block->header.timestamp_ms) / 1000.0 -
                net::to_seconds(it->second);
            if (latency >= 0) {
                latency_sum += latency;
                ++latency_samples;
            }
        }
    }

    ThroughputPoint point;
    point.participants = participants;
    point.txs_per_second =
        static_cast<double>(mined) / net::to_seconds(horizon);
    point.mean_inclusion_latency_s =
        latency_samples ? latency_sum / static_cast<double>(latency_samples)
                        : 0.0;
    point.mean_block_interval_s =
        chain.height() > 0
            ? net::to_seconds(horizon) / static_cast<double>(chain.height())
            : 0.0;
    return point;
}

void BM_ChainPerformance(benchmark::State& state) {
    for (auto _ : state) {
        bench::Json json = bench::Json::object();
        json.set("bench", "chain_performance");
        // The chain sections run the deterministic discrete-event loop,
        // which is inherently single-threaded; wall time per section is
        // recorded so the event-loop cost itself is tracked cross-PR (the
        // parallel-engine speedups live in BENCH_micro_substrates.json and
        // BENCH_table1_fig3_vanilla_fl.json).

        bench::print_title(
            "E3a — throughput & inclusion latency vs participants "
            "(64 KB chunk txs, saturated, 20 Mbit/s shared uplinks)");
        std::printf("%12s %14s %22s %20s\n", "participants", "txs/s",
                    "inclusion latency (s)", "block interval (s)");
        bench::Json throughput_points = bench::Json::array();
        const auto throughput_begin = std::chrono::steady_clock::now();
        for (std::size_t n : {2, 4, 8, 16}) {
            const ThroughputPoint p =
                measure_throughput(n, 64 * 1024, net::seconds(200));
            std::printf("%12zu %14.3f %22.2f %20.2f\n", p.participants,
                        p.txs_per_second, p.mean_inclusion_latency_s,
                        p.mean_block_interval_s);
            bench::Json point = bench::Json::object();
            point.set("participants",
                      static_cast<std::uint64_t>(p.participants));
            point.set("txs_per_second", p.txs_per_second);
            point.set("mean_inclusion_latency_s", p.mean_inclusion_latency_s);
            point.set("mean_block_interval_s", p.mean_block_interval_s);
            throughput_points.push(std::move(point));
        }
        json.set("throughput_wall_ms", bench::ms_since(throughput_begin));

        bench::print_title(
            "E3b — block interval vs PoW difficulty (1 miner, 400 h/s, "
            "retarget disabled)");
        std::printf("%12s %20s %16s\n", "difficulty", "mean interval (s)",
                    "blocks mined");
        bench::Json difficulty_points = bench::Json::array();
        const auto difficulty_begin = std::chrono::steady_clock::now();
        for (std::uint64_t difficulty : {200u, 400u, 800u, 1600u, 3200u}) {
            net::Simulation sim;
            net::Network network(sim, net::LinkParams{}, 3);
            node::NodeConfig config;
            config.chain.initial_difficulty = difficulty;
            config.chain.min_difficulty = difficulty;
            config.chain.fixed_difficulty = true;
            config.key_seed = 5;
            config.hash_rate = 400.0;
            node::Node node(sim, network, config);
            node.start();
            sim.run_until(net::seconds(2000));
            const double interval =
                node.chain().height() > 0
                    ? 2000.0 / static_cast<double>(node.chain().height())
                    : 0.0;
            std::printf("%12llu %20.2f %16llu\n",
                        static_cast<unsigned long long>(difficulty), interval,
                        static_cast<unsigned long long>(node.chain().height()));
            bench::Json point = bench::Json::object();
            point.set("difficulty", difficulty);
            point.set("mean_interval_s", interval);
            point.set("blocks_mined", node.chain().height());
            difficulty_points.push(std::move(point));
        }
        json.set("difficulty_wall_ms", bench::ms_since(difficulty_begin));

        bench::print_title(
            "E3c — Figure 2 workflow: block propagation delay vs model "
            "payload size (100 Mbit/s LAN)");
        std::printf("%16s %24s\n", "payload (KB)", "propagation delay (ms)");
        bench::Json propagation_points = bench::Json::array();
        const auto propagation_begin = std::chrono::steady_clock::now();
        for (std::size_t kb : {16u, 64u, 248u, 1024u, 4096u, 21'200u}) {
            net::Simulation sim;
            net::LinkParams link;
            link.jitter_fraction = 0.0;
            net::Network network(sim, link, 5);
            net::SimTime delivered = 0;
            const auto a = network.add_node([](net::NodeId, const Bytes&) {});
            const auto b = network.add_node(
                [&](net::NodeId, const Bytes&) { delivered = sim.now(); });
            (void)a;
            network.send(0, b, Bytes(kb * 1024, 0x11));
            sim.run();
            const double delay_ms = static_cast<double>(delivered) / 1000.0;
            std::printf("%16zu %24.2f\n", kb, delay_ms);
            bench::Json point = bench::Json::object();
            point.set("payload_kb", static_cast<std::uint64_t>(kb));
            point.set("propagation_delay_ms", delay_ms);
            propagation_points.push(std::move(point));
        }
        json.set("propagation_wall_ms", bench::ms_since(propagation_begin));

        json.set("throughput_points", std::move(throughput_points));
        json.set("difficulty_points", std::move(difficulty_points));
        json.set("propagation_points", std::move(propagation_points));
        bench::write_bench_json("chain_performance", json);
    }
}

}  // namespace

BENCHMARK(BM_ChainPerformance)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
