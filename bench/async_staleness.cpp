// E8 (extension — asynchronous FLchain): is the paper's "not to wait" path
// salvageable when a peer is a genuine straggler?
//
// Scenario (core::paper_straggler_config): peer C trains ~9x slower than A
// and B, and the fast peers aggregate on a fixed deadline that C's model
// never meets — the paper's timeout case, every round. Under plain
// "fedavg_all" the fast peers simply lose C's data. StalenessWeightedFedAvg
// instead backfills C's most recent earlier-round model at a weight that
// halves every `half_life` rounds (arXiv:2112.07938's staleness-discounted
// mixing), and ReputationWeighted re-weights whoever did arrive by their
// smoothed contribution quality (arXiv:2310.09665-style).
//
// Expected shape: the staleness-weighted async points recover a visible
// slice of the accuracy the async path gave up, at (near) identical round
// time; the wait_all reference shows what full synchrony costs in time.
//
// Results are emitted as BENCH_async_staleness.json for cross-PR tracking.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"

namespace {

using namespace bcfl;

struct ScenarioRow {
    std::string label;
    std::string wait_spec;
    std::string agg_spec;
    double mean_round_s = 0.0;       // honest (non-straggler) peers
    double final_accuracy = 0.0;     // honest peers, last round
    double mean_models_used = 0.0;   // honest peers
    std::uint64_t stale_used = 0;    // stale backfills across honest peers
    std::uint64_t timeout_rounds = 0;
};

ScenarioRow run_scenario(const fl::FlTask& task, const std::string& label,
                         const std::string& wait_spec,
                         const std::string& agg_spec) {
    core::DecentralizedConfig config = core::paper_straggler_config();
    config.wait_policy = wait_spec;
    config.aggregation = agg_spec;
    const core::DecentralizedResult result =
        core::run_decentralized(task, config);

    ScenarioRow row;
    row.label = label;
    row.wait_spec = wait_spec;
    row.agg_spec = agg_spec;
    double round_s = 0.0;
    double models = 0.0;
    std::size_t samples = 0;
    std::size_t honest = 0;
    for (std::size_t peer = 0; peer < result.peer_records.size(); ++peer) {
        const bool straggler = peer == config.stragglers.front();
        if (straggler) continue;
        ++honest;
        const auto& records = result.peer_records[peer];
        if (!records.empty()) row.final_accuracy += records.back().chosen_accuracy;
        for (const core::PeerRoundRecord& record : records) {
            if (record.aggregated_at == 0) continue;
            round_s += net::to_seconds(record.aggregated_at -
                                       record.round_started);
            models += static_cast<double>(record.models_available);
            row.stale_used += record.stale_models_used;
            if (record.timed_out) ++row.timeout_rounds;
            ++samples;
        }
    }
    if (honest > 0) row.final_accuracy /= static_cast<double>(honest);
    if (samples > 0) {
        row.mean_round_s = round_s / static_cast<double>(samples);
        row.mean_models_used = models / static_cast<double>(samples);
    }
    return row;
}

bench::Json g_rows = bench::Json::array();
double g_async_fedavg_accuracy = 0.0;
double g_staleness_best_accuracy = 0.0;

void BM_AsyncStaleness(benchmark::State& state) {
    ml::SyntheticCifarConfig data_config = core::paper_data_config();
    data_config.train_per_client = 300;
    data_config.test_per_client = 200;
    const auto data = ml::make_synthetic_cifar(data_config);
    const fl::FlTask task = core::paper_simple_task(data);

    for (auto _ : state) {
        bench::print_title(
            "E8 — staleness-aware async aggregation under a straggler "
            "(peer C trains 400s vs 45s; fast peers aggregate at a 120s "
            "deadline)");
        std::printf("%-22s %34s %12s %15s %8s %9s\n", "scenario",
                    "aggregation", "round (s)", "final accuracy", "stale",
                    "timeouts");

        const struct {
            const char* label;
            const char* wait;
            const char* agg;
        } scenarios[] = {
            {"sync reference", "wait_all,timeout=900s", "fedavg_all"},
            {"async, drop late", "deadline=120s", "fedavg_all"},
            {"async, staleness 1r", "deadline=120s",
             "staleness_fedavg,half_life=1r"},
            {"async, staleness 2r", "deadline=120s",
             "staleness_fedavg,half_life=2r"},
            {"async, reputation", "deadline=120s", "reputation,alpha=0.4"},
        };
        for (const auto& scenario : scenarios) {
            const ScenarioRow row = run_scenario(task, scenario.label,
                                                 scenario.wait, scenario.agg);
            std::printf("%-22s %34s %12.1f %15.4f %8llu %9llu\n",
                        row.label.c_str(), row.agg_spec.c_str(),
                        row.mean_round_s, row.final_accuracy,
                        static_cast<unsigned long long>(row.stale_used),
                        static_cast<unsigned long long>(row.timeout_rounds));
            if (row.agg_spec == std::string("fedavg_all") &&
                row.wait_spec != std::string("wait_all,timeout=900s")) {
                g_async_fedavg_accuracy = row.final_accuracy;
            }
            if (row.agg_spec.rfind("staleness_fedavg", 0) == 0) {
                g_staleness_best_accuracy =
                    std::max(g_staleness_best_accuracy, row.final_accuracy);
            }
            g_rows.push(bench::Json::object()
                            .set("scenario", row.label)
                            .set("wait_spec", row.wait_spec)
                            .set("agg_spec", row.agg_spec)
                            .set("mean_round_s", row.mean_round_s)
                            .set("final_accuracy", row.final_accuracy)
                            .set("mean_models_used", row.mean_models_used)
                            .set("stale_models_used", row.stale_used)
                            .set("timeout_rounds", row.timeout_rounds));
        }
        std::printf(
            "\nexpected shape: staleness_fedavg recovers accuracy the plain "
            "async path\ndrops (the straggler's last model re-enters at "
            "2^(-staleness/half_life)\nweight) while keeping the async round "
            "time.\n");
    }
}

}  // namespace

BENCHMARK(BM_AsyncStaleness)->Unit(benchmark::kSecond)->Iterations(1);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::write_bench_json(
        "async_staleness",
        bench::Json::object()
            .set("bench", "async_staleness")
            .set("scenario", "paper_straggler_config: straggler C 400s, "
                             "honest deadline 120s, 6 rounds")
            .set("async_fedavg_accuracy", g_async_fedavg_accuracy)
            .set("staleness_best_accuracy", g_staleness_best_accuracy)
            .set("staleness_beats_plain_async",
                 g_staleness_best_accuracy > g_async_fedavg_accuracy)
            .set("points", std::move(g_rows)));
    return 0;
}
