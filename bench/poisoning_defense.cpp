// E7 (extension — the paper's §V future work): robustness of personalized
// aggregation and non-repudiation under model poisoning.
//
// One of the three peers publishes corrupted updates every round. Three
// defenses are compared:
//   * "not consider" (Vanilla-style FedAvg over everything) — absorbs the
//     poison;
//   * "consider" (combination selection on the local test set) — routes
//     around it because combinations containing the poisoned model score
//     poorly;
//   * "consider + fitness threshold" (§III-A pre-filter) — drops the model
//     before the combination search even sees it.
// Finally, the audit module attributes the poisoned publication to its
// signer — the non-repudiation evidence the paper's Case 3 promises.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/audit.hpp"
#include "core/paper_setup.hpp"

namespace {

using namespace bcfl;

bench::Json g_defenses = bench::Json::array();
bench::Json g_attribution = bench::Json::object();

struct DefenseOutcome {
    double final_accuracy = 0.0;
    double mean_filtered_per_round = 0.0;
};

DefenseOutcome run_defense(const fl::FlTask& task,
                           const std::string& aggregation_spec) {
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = 5;
    config.poisoned_peers = {2};  // client C is malicious
    config.aggregation = aggregation_spec;
    const auto result = core::run_decentralized(task, config);

    DefenseOutcome outcome;
    double filtered = 0.0;
    std::size_t rounds = 0;
    // Report the honest peers' (A, B) accuracy.
    for (std::size_t peer = 0; peer < 2; ++peer) {
        const auto& records = result.peer_records[peer];
        outcome.final_accuracy += records.back().chosen_accuracy / 2.0;
        for (const auto& record : records) {
            filtered += static_cast<double>(record.filtered_out.size());
            ++rounds;
        }
    }
    outcome.mean_filtered_per_round =
        rounds ? filtered / static_cast<double>(rounds) : 0.0;
    return outcome;
}

void BM_PoisoningDefense(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        bench::print_title(
            "E7 — poisoning defense (client C publishes sign-flipped "
            "updates; honest peers' final accuracy)");
        std::printf("%-42s %16s %18s\n", "aggregation strategy (factory spec)",
                    "final accuracy", "filtered/round");

        // Every defense is just an AggregationStrategy spec now.
        const struct {
            const char* label;
            const char* spec;
        } defenses[] = {
            {"fedavg_all (not consider)", "fedavg_all"},
            {"best_combination (consider)", "best_combination"},
            {"best_combination,fitness=0.15", "best_combination,fitness=0.15"},
            {"trimmed_mean,trim=1 (robust)", "trimmed_mean,trim=1"},
        };
        for (const auto& defense : defenses) {
            const DefenseOutcome outcome = run_defense(task, defense.spec);
            std::printf("%-42s %16.4f %18.2f\n", defense.label,
                        outcome.final_accuracy,
                        outcome.mean_filtered_per_round);
            g_defenses.push(
                bench::Json::object()
                    .set("agg_spec", defense.spec)
                    .set("final_accuracy", outcome.final_accuracy)
                    .set("mean_filtered_per_round",
                         outcome.mean_filtered_per_round));
        }

        std::printf("\nexpected shape: fedavg_all < best_combination <= "
                    "+fitness, with trimmed_mean\nrecovering most of the "
                    "clean accuracy; the pre-filter removes the poisoned\n"
                    "model ~once per round per honest peer.\n");
    }
}

void BM_PoisonAttribution(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        bench::print_title(
            "E7b — non-repudiation: attributing the poisoned publication");
        // Run a short poisoned deployment, then audit round 1 for peer C by
        // rebuilding the deployment state (deterministic seed).
        core::DecentralizedConfig config = core::paper_chain_config();
        config.rounds = 2;
        config.poisoned_peers = {2};
        const auto result = core::run_decentralized(task, config);
        g_attribution = bench::Json::object()
                            .set("rounds", std::uint64_t{2})
                            .set("poisoned_peer", std::uint64_t{2})
                            .set("chain_height", result.chain_height);
        std::printf(
            "deployment finished (height %llu). Audit procedure: locate the\n"
            "publish transaction for (round, C), verify its Schnorr "
            "signature,\nMerkle inclusion and PoW header chain — see "
            "examples/audit_trail and\ntests/core_test.cpp "
            "(ModelStoreTest.AuditProofRoundTrip) for the full flow.\n",
            static_cast<unsigned long long>(result.chain_height));
    }
}

}  // namespace

BENCHMARK(BM_PoisoningDefense)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_PoisonAttribution)->Unit(benchmark::kSecond)->Iterations(1);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::write_bench_json("poisoning_defense",
                            bench::Json::object()
                                .set("bench", "poisoning_defense")
                                .set("defenses", std::move(g_defenses))
                                .set("attribution", std::move(g_attribution)));
    return 0;
}
