// E7 (extension — the paper's §V future work): robustness of personalized
// aggregation and non-repudiation under model poisoning.
//
// One of the three peers publishes corrupted updates every round. Three
// defenses are compared:
//   * "not consider" (Vanilla-style FedAvg over everything) — absorbs the
//     poison;
//   * "consider" (combination selection on the local test set) — routes
//     around it because combinations containing the poisoned model score
//     poorly;
//   * "consider + fitness threshold" (§III-A pre-filter) — drops the model
//     before the combination search even sees it.
// Finally, the audit module attributes the poisoned publication to its
// signer — the non-repudiation evidence the paper's Case 3 promises.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/audit.hpp"
#include "core/paper_setup.hpp"

namespace {

using namespace bcfl;

struct DefenseOutcome {
    double final_accuracy = 0.0;
    double mean_filtered_per_round = 0.0;
};

DefenseOutcome run_defense(const fl::FlTask& task, bool aggregate_all,
                           double threshold) {
    core::DecentralizedConfig config = core::paper_chain_config();
    config.rounds = 5;
    config.poisoned_peers = {2};  // client C is malicious
    config.aggregate_all = aggregate_all;
    config.fitness_threshold = threshold;
    const auto result = core::run_decentralized(task, config);

    DefenseOutcome outcome;
    double filtered = 0.0;
    std::size_t rounds = 0;
    // Report the honest peers' (A, B) accuracy.
    for (std::size_t peer = 0; peer < 2; ++peer) {
        const auto& records = result.peer_records[peer];
        outcome.final_accuracy += records.back().chosen_accuracy / 2.0;
        for (const auto& record : records) {
            filtered += static_cast<double>(record.filtered_out.size());
            ++rounds;
        }
    }
    outcome.mean_filtered_per_round =
        rounds ? filtered / static_cast<double>(rounds) : 0.0;
    return outcome;
}

void BM_PoisoningDefense(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        bench::print_title(
            "E7 — poisoning defense (client C publishes sign-flipped "
            "updates; honest peers' final accuracy)");
        std::printf("%-36s %16s %18s\n", "aggregation policy",
                    "final accuracy", "filtered/round");

        const DefenseOutcome vanilla = run_defense(task, true, 0.0);
        std::printf("%-36s %16.4f %18.2f\n",
                    "not consider (FedAvg everything)", vanilla.final_accuracy,
                    vanilla.mean_filtered_per_round);

        const DefenseOutcome consider = run_defense(task, false, 0.0);
        std::printf("%-36s %16.4f %18.2f\n", "consider (combination search)",
                    consider.final_accuracy,
                    consider.mean_filtered_per_round);

        const DefenseOutcome threshold = run_defense(task, false, 0.15);
        std::printf("%-36s %16.4f %18.2f\n",
                    "consider + fitness threshold 0.15",
                    threshold.final_accuracy,
                    threshold.mean_filtered_per_round);

        std::printf("\nexpected shape: not-consider < consider <= "
                    "consider+threshold; the pre-filter\nremoves the poisoned "
                    "model ~once per round per honest peer.\n");
    }
}

void BM_PoisonAttribution(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        bench::print_title(
            "E7b — non-repudiation: attributing the poisoned publication");
        // Run a short poisoned deployment, then audit round 1 for peer C by
        // rebuilding the deployment state (deterministic seed).
        core::DecentralizedConfig config = core::paper_chain_config();
        config.rounds = 2;
        config.poisoned_peers = {2};
        const auto result = core::run_decentralized(task, config);
        (void)result;
        std::printf(
            "deployment finished (height %llu). Audit procedure: locate the\n"
            "publish transaction for (round, C), verify its Schnorr "
            "signature,\nMerkle inclusion and PoW header chain — see "
            "examples/audit_trail and\ntests/core_test.cpp "
            "(ModelStoreTest.AuditProofRoundTrip) for the full flow.\n",
            static_cast<unsigned long long>(result.chain_height));
    }
}

}  // namespace

BENCHMARK(BM_PoisoningDefense)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_PoisonAttribution)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
