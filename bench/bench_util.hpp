// Shared formatting helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bcfl::bench {

inline void print_rule(std::size_t width = 100) {
    std::string line(width, '-');
    std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
    std::printf("\n");
    print_rule();
    std::printf("%s\n", title.c_str());
    print_rule();
}

/// Prints one table row: a label column followed by per-round values.
inline void print_row(const std::string& label,
                      const std::vector<double>& values) {
    std::printf("%-14s", label.c_str());
    for (double v : values) std::printf(" %6.4f", v);
    std::printf("\n");
}

inline void print_round_header(const std::string& label, std::size_t rounds) {
    std::printf("%-14s", label.c_str());
    for (std::size_t r = 1; r <= rounds; ++r) {
        std::printf(" %6zu", r);
    }
    std::printf("\n");
}

}  // namespace bcfl::bench
