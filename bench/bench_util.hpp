// Shared formatting helpers for the table/figure reproduction benches, plus
// a minimal ordered-JSON builder so benches can emit machine-readable
// BENCH_*.json result objects for cross-PR perf tracking.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bcfl::bench {

/// Milliseconds elapsed since `begin` (steady clock).
inline double ms_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds — the serial-vs-
/// parallel speedup measurements all quote this.
inline double best_wall_ms(std::size_t reps,
                           const std::function<void()>& fn) {
    double best = 1e300;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto begin = std::chrono::steady_clock::now();
        fn();
        const double ms = ms_since(begin);
        if (ms < best) best = ms;
    }
    return best;
}

/// Appends one value to a determinism fingerprint at full round-trip
/// precision. Every bench fingerprint that ci.sh diffs across
/// BCFL_THREADS settings must go through this one formatter.
inline void append_fingerprint(std::string& out, double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g;", value);
    out += buffer;
}

inline void print_rule(std::size_t width = 100) {
    std::string line(width, '-');
    std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
    std::printf("\n");
    print_rule();
    std::printf("%s\n", title.c_str());
    print_rule();
}

/// Prints one table row: a label column followed by per-round values.
inline void print_row(const std::string& label,
                      const std::vector<double>& values) {
    std::printf("%-14s", label.c_str());
    for (double v : values) std::printf(" %6.4f", v);
    std::printf("\n");
}

inline void print_round_header(const std::string& label, std::size_t rounds) {
    std::printf("%-14s", label.c_str());
    for (std::size_t r = 1; r <= rounds; ++r) {
        std::printf(" %6zu", r);
    }
    std::printf("\n");
}

/// Minimal ordered JSON value (objects keep insertion order, like the
/// tables they mirror). Covers exactly what the benches need: objects,
/// arrays, strings, numbers and booleans.
class Json {
public:
    Json() : kind_(Kind::null) {}
    Json(const char* v) : kind_(Kind::string), string_(v) {}
    Json(std::string v) : kind_(Kind::string), string_(std::move(v)) {}
    Json(double v) : kind_(Kind::number), number_(v) {}
    Json(std::uint64_t v) : kind_(Kind::integer), integer_(v) {}
    Json(std::uint32_t v)
        : kind_(Kind::integer), integer_(static_cast<std::uint64_t>(v)) {}
    // Signed ints go through the number path so negatives don't wrap to
    // huge unsigned values (doubles are exact well past any bench count).
    Json(int v) : kind_(Kind::number), number_(static_cast<double>(v)) {}
    Json(bool v) : kind_(Kind::boolean), boolean_(v) {}

    static Json object() {
        Json j;
        j.kind_ = Kind::object;
        return j;
    }
    static Json array() {
        Json j;
        j.kind_ = Kind::array;
        return j;
    }

    Json& set(const std::string& key, Json value) {
        members_.emplace_back(key, std::move(value));
        return *this;
    }
    Json& push(Json value) {
        elements_.push_back(std::move(value));
        return *this;
    }

    [[nodiscard]] std::string dump() const {
        std::string out;
        write(out);
        return out;
    }

private:
    enum class Kind { null, object, array, string, number, integer, boolean };

    static void escape(const std::string& s, std::string& out) {
        out.push_back('"');
        for (char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buffer[8];
                        std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                        out += buffer;
                    } else {
                        out.push_back(c);
                    }
            }
        }
        out.push_back('"');
    }

    void write(std::string& out) const {
        switch (kind_) {
            case Kind::null: out += "null"; break;
            case Kind::string: escape(string_, out); break;
            case Kind::boolean: out += boolean_ ? "true" : "false"; break;
            case Kind::integer: out += std::to_string(integer_); break;
            case Kind::number: {
                char buffer[32];
                std::snprintf(buffer, sizeof(buffer), "%.10g", number_);
                out += buffer;
                break;
            }
            case Kind::object: {
                out.push_back('{');
                bool first = true;
                for (const auto& [key, value] : members_) {
                    if (!first) out.push_back(',');
                    first = false;
                    escape(key, out);
                    out.push_back(':');
                    value.write(out);
                }
                out.push_back('}');
                break;
            }
            case Kind::array: {
                out.push_back('[');
                bool first = true;
                for (const Json& value : elements_) {
                    if (!first) out.push_back(',');
                    first = false;
                    value.write(out);
                }
                out.push_back(']');
                break;
            }
        }
    }

    Kind kind_;
    std::string string_;
    double number_ = 0.0;
    std::uint64_t integer_ = 0;
    bool boolean_ = false;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> elements_;
};

/// Writes `json` to BENCH_<name>.json in the working directory and echoes
/// the path, so bench runs leave a machine-readable trail.
inline void write_bench_json(const std::string& name, const Json& json) {
    const std::string path = "BENCH_" + name + ".json";
    if (std::FILE* file = std::fopen(path.c_str(), "w")) {
        const std::string text = json.dump();
        std::fwrite(text.data(), 1, text.size(), file);
        std::fputc('\n', file);
        std::fclose(file);
        std::printf("\n[bench json] wrote %s (%zu bytes)\n", path.c_str(),
                    text.size() + 1);
    } else {
        std::printf("\n[bench json] could not open %s for writing\n",
                    path.c_str());
    }
}

}  // namespace bcfl::bench
