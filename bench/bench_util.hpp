// Shared formatting helpers for the table/figure reproduction benches.
// BENCH_*.json documents are built with the library's ordered JSON type
// (core::JsonValue — also the scenario engine's spec/output format), so
// every machine-readable artifact in the repo goes through one writer.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "core/scenario.hpp"

namespace bcfl::bench {

/// Insertion-ordered JSON value (objects keep member order, like the
/// tables they mirror). Alias of the scenario engine's document type.
using Json = core::JsonValue;

/// Milliseconds elapsed since `begin` (steady clock).
inline double ms_since(std::chrono::steady_clock::time_point begin) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds — the serial-vs-
/// parallel speedup measurements all quote this.
inline double best_wall_ms(std::size_t reps,
                           const std::function<void()>& fn) {
    double best = 1e300;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto begin = std::chrono::steady_clock::now();
        fn();
        const double ms = ms_since(begin);
        if (ms < best) best = ms;
    }
    return best;
}

/// Appends one value to a determinism fingerprint at full round-trip
/// precision. Every bench fingerprint that ci.sh diffs across
/// BCFL_THREADS settings must go through this one formatter.
inline void append_fingerprint(std::string& out, double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g;", value);
    out += buffer;
}

inline void print_rule(std::size_t width = 100) {
    std::string line(width, '-');
    std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
    std::printf("\n");
    print_rule();
    std::printf("%s\n", title.c_str());
    print_rule();
}

/// Prints one table row: a label column followed by per-round values.
inline void print_row(const std::string& label,
                      const std::vector<double>& values) {
    std::printf("%-14s", label.c_str());
    for (double v : values) std::printf(" %6.4f", v);
    std::printf("\n");
}

inline void print_round_header(const std::string& label, std::size_t rounds) {
    std::printf("%-14s", label.c_str());
    for (std::size_t r = 1; r <= rounds; ++r) {
        std::printf(" %6zu", r);
    }
    std::printf("\n");
}

/// Writes `json` to BENCH_<name>.json in the working directory and echoes
/// the path, so bench runs leave a machine-readable trail.
inline void write_bench_json(const std::string& name, const Json& json) {
    const std::string path = "BENCH_" + name + ".json";
    if (std::FILE* file = std::fopen(path.c_str(), "w")) {
        const std::string text = json.dump();
        std::fwrite(text.data(), 1, text.size(), file);
        std::fputc('\n', file);
        std::fclose(file);
        std::printf("\n[bench json] wrote %s (%zu bytes)\n", path.c_str(),
                    text.size() + 1);
    } else {
        std::printf("\n[bench json] could not open %s for writing\n",
                    path.c_str());
    }
}

}  // namespace bcfl::bench
