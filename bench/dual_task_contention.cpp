// E5 — the paper's real-deployment observation: "resource exhaustion due to
// dual tasks on one peer (mining and training model), a scenario that
// similar research with simulation experiments do not encounter."
//
// (a) a single miner under increasing training CPU load: block interval
//     inflates as 1/(1-load);
// (b) the full three-peer deployment with and without contention: per-round
//     wall clock grows when peers mine and train on the same CPU. The
//     deployment runs the paper's default policies from the factory
//     (paper_chain_config: "wait_all" + "best_combination").
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"
#include "net/sim_transport.hpp"

namespace {

using namespace bcfl;

bench::Json g_miner_points = bench::Json::array();
bench::Json g_deployment_points = bench::Json::array();

void BM_MinerUnderLoad(benchmark::State& state) {
    for (auto _ : state) {
        bench::print_title(
            "E5a — block interval vs training CPU load (single miner, fixed "
            "difficulty)");
        std::printf("%12s %22s %14s\n", "cpu load", "mean interval (s)",
                    "blocks");
        for (double load : {0.0, 0.25, 0.5, 0.75, 0.9}) {
            net::SimTransport transport(net::LinkParams{}, 3);
            node::NodeConfig config;
            config.chain.initial_difficulty = 800;
            config.chain.min_difficulty = 800;
            config.chain.fixed_difficulty = true;
            config.key_seed = 21;
            config.hash_rate = 400.0;
            node::Node node(transport, config);
            node.set_compute_load(load);
            node.start();
            transport.sim().run_until(net::seconds(3000));
            const double interval =
                node.chain().height() > 0
                    ? 3000.0 / static_cast<double>(node.chain().height())
                    : 0.0;
            std::printf("%12.2f %22.2f %14llu\n", load, interval,
                        static_cast<unsigned long long>(node.chain().height()));
            g_miner_points.push(bench::Json::object()
                                    .set("cpu_load", load)
                                    .set("mean_interval_s", interval)
                                    .set("blocks", node.chain().height()));
        }
    }
}

void BM_DeploymentWithContention(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        bench::print_title(
            "E5b — full deployment: dual-duty contention vs dedicated roles "
            "(Simple NN, 4 rounds)");
        std::printf("%24s %18s %18s %14s\n", "training cpu load",
                    "round time (s)", "wait time (s)", "chain height");
        for (double load : {0.0, 0.8, 0.95}) {
            core::DecentralizedConfig config = core::paper_chain_config();
            config.rounds = 4;
            config.train_cpu_load = load;
            const auto result = core::run_decentralized(task, config);
            std::printf("%24.2f %18.1f %18.1f %14llu\n", load,
                        result.mean_round_seconds, result.mean_wait_seconds,
                        static_cast<unsigned long long>(result.chain_height));
            g_deployment_points.push(
                bench::Json::object()
                    .set("train_cpu_load", load)
                    .set("mean_round_s", result.mean_round_seconds)
                    .set("mean_wait_s", result.mean_wait_seconds)
                    .set("chain_height", result.chain_height));
        }
    }
}

}  // namespace

BENCHMARK(BM_MinerUnderLoad)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_DeploymentWithContention)->Unit(benchmark::kSecond)->Iterations(1);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::write_bench_json(
        "dual_task_contention",
        bench::Json::object()
            .set("bench", "dual_task_contention")
            .set("miner_under_load", std::move(g_miner_points))
            .set("deployment_with_contention",
                 std::move(g_deployment_points)));
    return 0;
}
