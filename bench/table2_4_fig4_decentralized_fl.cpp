// E2 — Tables II/III/IV + Figure 4: blockchain-based (decentralized) FL.
//
// Three fully-coupled peers (miner + trainer + aggregator) on a simulated
// private Ethereum. Every round each peer publishes its trained model
// through the registry contract, reads the others' models from chain data,
// and evaluates five combinations on its local test set: self, self+each
// other, the other pair, and all three — the rows of the paper's tables.
// The round loop runs the paper's default policies from the factory:
// wait_all (sync + safety valve) and best_combination ("consider").
//
// Paper shape to reproduce: for the Simple NN the combination rows are
// nearly identical (pairs ~ all, self slightly behind); for Efficient-B0 the
// full combination A,B,C wins in most rounds and self-only clearly trails.
//
// Results are also emitted as BENCH_table2_4_fig4.json (per-combination
// accuracy series + figure-4 summary + chain metrics) for cross-PR
// tracking.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"

namespace {

using namespace bcfl;

/// The Figure-4 summary: how often the full combination was the per-round
/// winner, and the mean gap between the full combo and self-only.
struct Fig4Stats {
    std::size_t full_wins = 0;
    std::size_t peer_rounds = 0;
    double mean_full_minus_self = 0.0;
};

Fig4Stats compute_fig4(const core::DecentralizedResult& result) {
    Fig4Stats stats;
    double full_minus_self = 0.0;
    for (const auto& records : result.peer_records) {
        for (const core::PeerRoundRecord& record : records) {
            double self_acc = 0.0, full_acc = 0.0, best = -1.0;
            std::string best_label;
            for (const core::ComboAccuracy& combo : record.combos) {
                if (combo.combo.size() == 1) self_acc = combo.accuracy;
                if (combo.combo.size() == 3) full_acc = combo.accuracy;
                if (combo.accuracy > best) {
                    best = combo.accuracy;
                    best_label = combo.label;
                }
            }
            if (best_label == "A,B,C") ++stats.full_wins;
            full_minus_self += full_acc - self_acc;
            ++stats.peer_rounds;
        }
    }
    if (stats.peer_rounds > 0) {
        stats.mean_full_minus_self =
            full_minus_self / static_cast<double>(stats.peer_rounds);
    }
    return stats;
}

bench::Json decentralized_json(const std::string& model_name,
                               const core::DecentralizedConfig& config,
                               const core::DecentralizedResult& result) {
    bench::Json peers = bench::Json::array();
    for (std::size_t peer = 0; peer < result.peer_records.size(); ++peer) {
        std::vector<std::string> order;
        std::map<std::string, std::vector<double>> rows;
        bench::Json chosen = bench::Json::array();
        for (const core::PeerRoundRecord& record : result.peer_records[peer]) {
            for (const core::ComboAccuracy& combo : record.combos) {
                if (!rows.contains(combo.label)) order.push_back(combo.label);
                rows[combo.label].push_back(combo.accuracy);
            }
            chosen.push(record.chosen_label);
        }
        bench::Json combos = bench::Json::object();
        for (const std::string& label : order) {
            bench::Json series = bench::Json::array();
            for (double acc : rows[label]) series.push(acc);
            combos.set(label, std::move(series));
        }
        peers.push(bench::Json::object()
                       .set("client", std::string(1, 'A' + char(peer)))
                       .set("combos", std::move(combos))
                       .set("chosen", std::move(chosen)));
    }
    const Fig4Stats fig4 = compute_fig4(result);
    return bench::Json::object()
        .set("model", model_name)
        .set("rounds", config.rounds)
        .set("wait_policy", config.wait_policy)
        .set("aggregation", config.aggregation)
        .set("peers", std::move(peers))
        .set("figure4",
             bench::Json::object()
                 .set("full_combo_wins", fig4.full_wins)
                 .set("peer_rounds", fig4.peer_rounds)
                 .set("mean_full_minus_self", fig4.mean_full_minus_self))
        .set("chain",
             bench::Json::object()
                 .set("height", result.chain_height)
                 .set("reorgs", result.total_reorgs)
                 .set("mean_round_s", result.mean_round_seconds)
                 .set("mean_wait_s", result.mean_wait_seconds)
                 .set("bytes_sent", result.traffic.bytes_sent)
                 .set("messages_delivered",
                      result.traffic.messages_delivered));
}

void print_decentralized_tables(const std::string& model_name,
                                const core::DecentralizedResult& result,
                                std::size_t rounds) {
    const char* table_names[3] = {"Table II (client A)", "Table III (client B)",
                                  "Table IV (client C)"};
    for (std::size_t peer = 0; peer < result.peer_records.size(); ++peer) {
        bench::print_title(std::string(table_names[peer % 3]) + " — " +
                           model_name +
                           ": accuracy per model combination and round");
        bench::print_round_header("params from", rounds);
        // Collect rows by combo label across rounds.
        std::vector<std::string> order;
        std::map<std::string, std::vector<double>> rows;
        for (const core::PeerRoundRecord& record : result.peer_records[peer]) {
            for (const core::ComboAccuracy& combo : record.combos) {
                if (!rows.contains(combo.label)) order.push_back(combo.label);
                rows[combo.label].push_back(combo.accuracy);
            }
        }
        for (const std::string& label : order) {
            bench::print_row(label, rows[label]);
        }
        std::printf("chosen:       ");
        for (const core::PeerRoundRecord& record : result.peer_records[peer]) {
            std::printf(" %6s", record.chosen_label.c_str());
        }
        std::printf("\n");
    }

    // Figure 4 is the same data plotted per client; print the summary the
    // figure conveys: how often the full combination won.
    const Fig4Stats fig4 = compute_fig4(result);
    std::printf("\nFigure 4 summary (%s): full combo best in %zu/%zu "
                "peer-rounds; mean (ABC - self) = %+.4f\n",
                model_name.c_str(), fig4.full_wins, fig4.peer_rounds,
                fig4.mean_full_minus_self);
    std::printf("chain: height=%llu reorgs=%llu; mean round=%.1fs, "
                "mean wait-for-models=%.1fs; network: %.2f MB in %llu msgs\n",
                static_cast<unsigned long long>(result.chain_height),
                static_cast<unsigned long long>(result.total_reorgs),
                result.mean_round_seconds, result.mean_wait_seconds,
                static_cast<double>(result.traffic.bytes_sent) / 1e6,
                static_cast<unsigned long long>(
                    result.traffic.messages_delivered));
}

bench::Json g_results = bench::Json::array();

void BM_Tables2to4_SimpleNN(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_simple_task(data);
    core::DecentralizedConfig config = core::paper_chain_config();
    for (auto _ : state) {
        const auto result = core::run_decentralized(task, config);
        print_decentralized_tables("Simple NN", result, config.rounds);
        g_results.push(decentralized_json("simple_nn", config, result));
    }
}

void BM_Tables2to4_EffNetB0(benchmark::State& state) {
    const auto data = ml::make_synthetic_cifar(core::paper_data_config());
    const fl::FlTask task = core::paper_effnet_task(data);
    core::DecentralizedConfig config = core::paper_chain_config();
    for (auto _ : state) {
        const auto result = core::run_decentralized(task, config);
        print_decentralized_tables("Efficient-B0 (lite)", result,
                                   config.rounds);
        g_results.push(decentralized_json("effnet_b0", config, result));
    }
}

}  // namespace

BENCHMARK(BM_Tables2to4_SimpleNN)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_Tables2to4_EffNetB0)->Unit(benchmark::kSecond)->Iterations(1);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::write_bench_json("table2_4_fig4",
                            bench::Json::object()
                                .set("bench", "table2_4_fig4_decentralized_fl")
                                .set("runs", std::move(g_results)));
    return 0;
}
