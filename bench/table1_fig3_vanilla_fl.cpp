// E1 — Table I + Figure 3: Vanilla (centralized) FL, clients' test accuracy
// under the two aggregation policies ("consider" vs "not consider"), for the
// Simple NN and the EfficientNet-B0-lite transfer-learning model.
//
// Paper shape to reproduce:
//   * Simple NN climbs slowly from ~0.22-0.28 to ~0.60; the two policies end
//     within ~1 point of each other ("consider" slightly ahead).
//   * Efficient-B0 starts high (~0.80, thanks to transfer learning) and
//     plateaus ~0.85-0.86 with small fluctuations between the policies.
//
// Emits BENCH_table1_fig3_vanilla_fl.json: one point per
// (model, policy, client) with the full accuracy curve, plus the
// serial-vs-parallel wall time of a vanilla "consider" round (per-client
// training fan-out + 2^n-1 combination scoring run through core/parallel)
// and the fingerprint proving the engine changes nothing but the clock.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"
#include "core/parallel.hpp"
#include "fl/task.hpp"
#include "fl/vanilla.hpp"

namespace {

using namespace bcfl;
namespace parallel = core::parallel;

ml::FederatedData benchmark_data() {
    return ml::make_synthetic_cifar(core::paper_data_config());
}

struct ModelBlock {
    std::string model_name;
    fl::VanillaResult consider;
    fl::VanillaResult not_consider;
    std::size_t clients = 0;
    std::size_t rounds = 0;
};

ModelBlock run_table1_block(const std::string& model_name,
                            const fl::FlTask& task, std::size_t rounds) {
    fl::VanillaConfig consider;
    consider.rounds = rounds;
    consider.mode = fl::AggregationMode::consider;
    fl::VanillaConfig vanilla = consider;
    vanilla.mode = fl::AggregationMode::not_consider;

    ModelBlock block;
    block.model_name = model_name;
    block.clients = task.clients;
    block.rounds = rounds;
    block.consider = run_vanilla(task, consider);
    block.not_consider = run_vanilla(task, vanilla);

    bench::print_title("Table I block — " + model_name +
                       " (clients' test accuracy per round)");
    bench::print_round_header("client/policy", rounds);
    for (std::size_t c = 0; c < task.clients; ++c) {
        const std::string client(1, static_cast<char>('A' + c));
        std::vector<double> consider_row, plain_row;
        for (std::size_t r = 0; r < rounds; ++r) {
            consider_row.push_back(block.consider.rounds[r].client_accuracy[c]);
            plain_row.push_back(
                block.not_consider.rounds[r].client_accuracy[c]);
        }
        bench::print_row(client + " consider", consider_row);
        bench::print_row(client + " not-cons.", plain_row);
    }

    std::printf("\nFigure 3 series (%s): per-client accuracy curves are the "
                "rows above;\nfinal-round gap (consider - not consider): ",
                model_name.c_str());
    double gap = 0.0;
    for (std::size_t c = 0; c < task.clients; ++c) {
        gap += block.consider.rounds[rounds - 1].client_accuracy[c] -
               block.not_consider.rounds[rounds - 1].client_accuracy[c];
    }
    std::printf("%+.4f (mean over clients)\n", gap / double(task.clients));

    std::printf("chosen combinations (consider): ");
    for (std::size_t r = 0; r < rounds; ++r) {
        std::printf("%s%s", r ? " " : "",
                    fl::combination_label(block.consider.rounds[r].chosen,
                                          "ABC")
                        .c_str());
    }
    std::printf("\n");
    return block;
}

void append_points(bench::Json& points, const ModelBlock& block) {
    const auto policy_points = [&](const fl::VanillaResult& result,
                                   const char* policy) {
        for (std::size_t c = 0; c < block.clients; ++c) {
            bench::Json point = bench::Json::object();
            point.set("model", block.model_name);
            point.set("policy", policy);
            point.set("client",
                      std::string(1, static_cast<char>('A' + c)));
            bench::Json curve = bench::Json::array();
            for (std::size_t r = 0; r < block.rounds; ++r) {
                curve.push(result.rounds[r].client_accuracy[c]);
            }
            point.set("accuracy_per_round", std::move(curve));
            point.set("final_accuracy",
                      result.rounds[block.rounds - 1].client_accuracy[c]);
            points.push(std::move(point));
        }
    };
    policy_points(block.consider, "consider");
    policy_points(block.not_consider, "not_consider");
}

std::string accuracy_fingerprint(const fl::VanillaResult& result) {
    std::string out;
    for (const fl::VanillaRound& round : result.rounds) {
        for (double accuracy : round.client_accuracy) {
            bench::append_fingerprint(out, accuracy);
        }
    }
    return out;
}

void BM_Table1_Fig3(benchmark::State& state) {
    const auto data = benchmark_data();
    const fl::FlTask simple_task = core::paper_simple_task(data);
    const fl::FlTask effnet_task = core::paper_effnet_task(data);

    for (auto _ : state) {
        const ModelBlock simple = run_table1_block("Simple NN", simple_task, 10);
        const ModelBlock effnet = run_table1_block(
            "Efficient-B0 (lite, transfer learning)", effnet_task, 10);

        // Serial vs parallel engine on a short "consider" run: per-client
        // training fans out across workers, and every round scores all
        // 2^n - 1 combinations concurrently. Accuracies must not move.
        fl::VanillaConfig speed_config;
        speed_config.rounds = 2;
        speed_config.mode = fl::AggregationMode::consider;
        fl::VanillaResult serial_run;
        fl::VanillaResult parallel_run;
        double serial_ms = 0.0;
        double parallel_ms = 0.0;
        {
            const parallel::ThreadCountOverride pin(1);
            serial_ms = bench::best_wall_ms(
                1, [&] { serial_run = run_vanilla(simple_task, speed_config); });
        }
        parallel_ms = bench::best_wall_ms(
            1, [&] { parallel_run = run_vanilla(simple_task, speed_config); });
        const std::string serial_fp = accuracy_fingerprint(serial_run);
        const std::string parallel_fp = accuracy_fingerprint(parallel_run);
        std::printf(
            "\nparallel engine (Simple NN, 2-round consider): "
            "%.0f ms -> %.0f ms (speedup %.2fx, accuracies %s)\n",
            serial_ms, parallel_ms, serial_ms / parallel_ms,
            serial_fp == parallel_fp ? "identical" : "DIVERGED");

        bench::Json json = bench::Json::object();
        json.set("bench", "table1_fig3_vanilla_fl");
        json.set("rounds", std::uint64_t{10});
        json.set("threads_parallel",
                 static_cast<std::uint64_t>(parallel::thread_count()));
        json.set("serial_ms", serial_ms);
        json.set("parallel_ms", parallel_ms);
        json.set("serial_vs_parallel_speedup", serial_ms / parallel_ms);
        json.set("fitness_identical", serial_fp == parallel_fp);
        json.set("fitness_fingerprint", parallel_fp);
        bench::Json points = bench::Json::array();
        append_points(points, simple);
        append_points(points, effnet);
        json.set("points", std::move(points));
        bench::write_bench_json("table1_fig3_vanilla_fl", json);
    }
}

}  // namespace

BENCHMARK(BM_Table1_Fig3)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
