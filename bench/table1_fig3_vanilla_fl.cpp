// E1 — Table I + Figure 3: Vanilla (centralized) FL, clients' test accuracy
// under the two aggregation policies ("consider" vs "not consider"), for the
// Simple NN and the EfficientNet-B0-lite transfer-learning model.
//
// Paper shape to reproduce:
//   * Simple NN climbs slowly from ~0.22-0.28 to ~0.60; the two policies end
//     within ~1 point of each other ("consider" slightly ahead).
//   * Efficient-B0 starts high (~0.80, thanks to transfer learning) and
//     plateaus ~0.85-0.86 with small fluctuations between the policies.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/paper_setup.hpp"
#include "fl/task.hpp"
#include "fl/vanilla.hpp"

namespace {

using namespace bcfl;

ml::FederatedData benchmark_data() {
    return ml::make_synthetic_cifar(core::paper_data_config());
}

void print_table1_block(const std::string& model_name, const fl::FlTask& task,
                        std::size_t rounds) {
    fl::VanillaConfig consider;
    consider.rounds = rounds;
    consider.mode = fl::AggregationMode::consider;
    fl::VanillaConfig vanilla = consider;
    vanilla.mode = fl::AggregationMode::not_consider;

    const fl::VanillaResult with_selection = run_vanilla(task, consider);
    const fl::VanillaResult plain = run_vanilla(task, vanilla);

    bench::print_title("Table I block — " + model_name +
                       " (clients' test accuracy per round)");
    bench::print_round_header("client/policy", rounds);
    for (std::size_t c = 0; c < task.clients; ++c) {
        const std::string client(1, static_cast<char>('A' + c));
        std::vector<double> consider_row, plain_row;
        for (std::size_t r = 0; r < rounds; ++r) {
            consider_row.push_back(with_selection.rounds[r].client_accuracy[c]);
            plain_row.push_back(plain.rounds[r].client_accuracy[c]);
        }
        bench::print_row(client + " consider", consider_row);
        bench::print_row(client + " not-cons.", plain_row);
    }

    std::printf("\nFigure 3 series (%s): per-client accuracy curves are the "
                "rows above;\nfinal-round gap (consider - not consider): ",
                model_name.c_str());
    double gap = 0.0;
    for (std::size_t c = 0; c < task.clients; ++c) {
        gap += with_selection.rounds[rounds - 1].client_accuracy[c] -
               plain.rounds[rounds - 1].client_accuracy[c];
    }
    std::printf("%+.4f (mean over clients)\n", gap / double(task.clients));

    std::printf("chosen combinations (consider): ");
    for (std::size_t r = 0; r < rounds; ++r) {
        std::printf("%s%s", r ? " " : "",
                    fl::combination_label(with_selection.rounds[r].chosen,
                                          "ABC")
                        .c_str());
    }
    std::printf("\n");
}

void BM_Table1_SimpleNN(benchmark::State& state) {
    const auto data = benchmark_data();
    const fl::FlTask task = core::paper_simple_task(data);
    for (auto _ : state) {
        print_table1_block("Simple NN", task, 10);
    }
}

void BM_Table1_EffNetB0(benchmark::State& state) {
    const auto data = benchmark_data();
    const fl::FlTask task = core::paper_effnet_task(data);
    for (auto _ : state) {
        print_table1_block("Efficient-B0 (lite, transfer learning)", task, 10);
    }
}

}  // namespace

BENCHMARK(BM_Table1_SimpleNN)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK(BM_Table1_EffNetB0)->Unit(benchmark::kSecond)->Iterations(1);
BENCHMARK_MAIN();
